#ifndef OASIS_COMMON_BLOCK_FENWICK_FOREST_H_
#define OASIS_COMMON_BLOCK_FENWICK_FOREST_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/fenwick_tree.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace oasis {

/// A forest of fixed-size Fenwick trees — the pool-scale sibling of
/// FenwickTree for mass vectors too large to rebuild serially.
///
/// The masses are split into contiguous numeric blocks of `block_size`
/// entries (a power of two, fixed at Build). Each block carries its own
/// Fenwick tree; a top-level Fenwick tree over the per-block totals routes
/// draws and prefix queries to the owning block. The key property is that
/// the NUMERIC layout (block boundaries, within-block summation, the order
/// the block totals fold into the top tree) is a function of `block_size`
/// alone: the shard/thread count passed to ParallelRebuild controls only
/// which worker recomputes which whole blocks, never how any floating-point
/// sum associates. Every result — values, totals, draws — is therefore
/// bit-identical at any shard/thread count, including fully serial
/// execution; tests/sharded_pool_test.cc pins this with golden hexfloat
/// values.
///
/// Complexity: Update is O(log block_size + log num_blocks); FindQuantile is
/// O(log num_blocks + log block_size); ParallelRebuild is O(n) work spread
/// over min(num_shards, pool threads) workers plus an O(num_blocks) serial
/// top-tree fold.
///
/// Note the forest is equivalent in *distribution*, not bit-for-bit, to one
/// monolithic FenwickTree over the same masses: a single tree's bottom-up
/// build interleaves partial sums across block boundaries, so nodes spanning
/// blocks round differently. The forest's own results are what the
/// determinism contract covers.
class BlockFenwickForest {
 public:
  BlockFenwickForest() = default;

  /// Default numeric block size: 4096 masses per block. Small enough that a
  /// single block rebuild is cache-resident, large enough that the top tree
  /// stays tiny (245 blocks at K = 1e6).
  static constexpr size_t kDefaultBlockSize = 4096;

  /// Fills one block's masses: write `out[j]` for the global indices
  /// `begin + j`, j in [0, out.size()). Invoked concurrently for distinct
  /// blocks during ParallelRebuildWith; must not touch state shared across
  /// blocks.
  using BlockFill =
      std::function<void(size_t begin, std::span<double> out)>;

  /// Builds the forest over `masses` in O(n). `block_size` must be a power
  /// of two; masses obey the FenwickTree validity rules (non-empty, finite,
  /// non-negative).
  static Result<BlockFenwickForest> Build(std::span<const double> masses,
                                          size_t block_size = kDefaultBlockSize);

  /// Replaces every mass in O(n) without allocating (steady state). Blocks
  /// are rebuilt as `num_shards` contiguous shard tasks fanned over `pool`
  /// (`pool == nullptr` or `num_shards <= 1` runs serially), then the block
  /// totals fold into the top tree serially in block order. Bit-identical
  /// output for every (pool, num_shards) combination. `masses` must have
  /// exactly size() entries and be valid per FenwickTree::Rebuild; on an
  /// invalid entry the error of the lowest-indexed failing shard is returned
  /// and the forest must be rebuilt before further use.
  Status ParallelRebuild(std::span<const double> masses, ThreadPool* pool,
                         size_t num_shards);

  /// Like ParallelRebuild, but each shard *computes* its blocks' masses via
  /// `fill` (into an internal scratch buffer) instead of reading a caller
  /// vector — so the O(n) mass recomputation itself is sharded, not just the
  /// tree refresh. `fill` must be elementwise-deterministic (output a
  /// function of the global index only) for the bit-identity guarantee to
  /// extend to it.
  Status ParallelRebuildWith(const BlockFill& fill, ThreadPool* pool,
                             size_t num_shards);

  /// Point-assigns mass `i` in O(log block_size + log num_blocks).
  void Update(size_t i, double mass);

  /// Current mass of index `i` (O(1)).
  double value(size_t i) const {
    return blocks_[i >> block_shift_].value(i & (block_size_ - 1));
  }

  /// Sum of all masses, from the top tree (O(log num_blocks)).
  double Total() const { return top_.Total(); }

  /// Inverse CDF at `target` in [0, Total()): picks the owning block via the
  /// top tree, then descends that block's tree. Same semantics as
  /// FenwickTree::FindQuantile (zero-mass indices never returned; targets at
  /// or above Total() clamp).
  size_t FindQuantile(double target) const;

  /// Number of masses n.
  size_t size() const { return size_; }

  /// Number of blocks (ceil(n / block_size)).
  size_t num_blocks() const { return blocks_.size(); }

  /// The fixed numeric block size.
  size_t block_size() const { return block_size_; }

 private:
  /// Shared skeleton of the two rebuild flavours: runs `rebuild_block(b)`
  /// for every block, sharded, then folds block totals in block order.
  Status ShardedRebuild(const std::function<Status(size_t)>& rebuild_block,
                        ThreadPool* pool, size_t num_shards);

  size_t size_ = 0;
  size_t block_size_ = 0;
  size_t block_shift_ = 0;  // log2(block_size_)
  std::vector<FenwickTree> blocks_;
  FenwickTree top_;                    // Over per-block totals.
  std::vector<double> totals_scratch_; // Block totals, folded in block order.
  std::vector<double> fill_scratch_;   // ParallelRebuildWith mass staging.
  std::vector<Status> shard_status_;   // Per-shard rebuild outcomes.
};

}  // namespace oasis

#endif  // OASIS_COMMON_BLOCK_FENWICK_FOREST_H_
