#ifndef OASIS_COMMON_THREAD_POOL_H_
#define OASIS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace oasis {

/// Cooperative cancellation flag shared between a caller and running work.
///
/// A producer (e.g. a UI thread or a watchdog) calls RequestCancel(); workers
/// poll cancelled() between units of work and stop early. Cancellation is
/// level-triggered and sticky: once requested it never resets, so a token is
/// one-shot — create a fresh token per run. All methods are thread-safe.
class CancellationToken {
 public:
  /// Requests cancellation. Idempotent; safe from any thread.
  void RequestCancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  /// Whether cancellation has been requested.
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Work-stealing thread pool with a blocking ParallelFor.
///
/// A fixed set of worker threads each owns a task deque. A worker pops from
/// the back of its own deque (LIFO, cache-friendly for recently pushed work)
/// and, when empty, steals from the front of a sibling's deque (FIFO, so the
/// oldest — typically largest-remaining — chunks migrate first). Loop bodies
/// execute ONLY on the pool's workers: a ThreadPool(N) runs at most N bodies
/// concurrently (so N=1 is a true serial baseline), and an external caller
/// blocks rather than adding an unaccounted N+1th executor. The exception is
/// a nested ParallelFor issued from inside a task: the issuing worker keeps
/// executing queued chunks while it waits, so nesting cannot deadlock even
/// on a 1-worker pool.
///
/// The pool is intended for coarse-grained tasks (an experiment repeat, a
/// shard of a pool) where per-task overhead of a mutex-guarded deque is
/// negligible; it is not a substitute for SIMD-grade loop parallelism.
///
/// Thread-safety: ParallelFor may be called concurrently from multiple
/// threads and re-entrantly from inside a task body (helping execution keeps
/// nested calls live), though deep nesting is discouraged.
class ThreadPool {
 public:
  /// Creates the pool. `num_threads <= 0` selects DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);

  /// Joins all workers. Must not be called while a ParallelFor is in flight
  /// on another thread, or concurrently with Submit() (normal usage — pool
  /// outlives its loops and handles — satisfies this trivially). Submitted
  /// tasks still queued at destruction are executed by the exiting workers,
  /// so every TaskHandle completes; prefer Wait()ing on handles before the
  /// pool dies.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding helping callers).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, clamped to at least 1.
  static int DefaultThreadCount();

  /// Handle to one task enqueued with Submit(). Default-constructed handles
  /// are empty; Wait() on them is a no-op. Handles are cheap shared
  /// references: copies observe the same task.
  class TaskHandle {
   public:
    TaskHandle() = default;

    /// Blocks until the task has run. If no worker has picked the task up
    /// yet, the caller claims and executes it inline — so Wait() makes
    /// progress even when every worker is busy (or the pool has one thread
    /// and the caller *is* that thread's current task), and submit-then-wait
    /// can never deadlock. Rethrows the task's exception, if any (every
    /// Wait() call on the handle rethrows it).
    void Wait();

    /// Whether the task has finished running (does not block).
    bool done() const;

    /// True when the handle refers to a task (i.e. came from Submit()).
    bool valid() const { return state_ != nullptr; }

   private:
    friend class ThreadPool;
    struct SubmitState;
    std::shared_ptr<SubmitState> state_;
  };

  /// Enqueues one task for asynchronous execution on the pool's workers and
  /// returns immediately. The task runs exactly once: on whichever worker
  /// dequeues it first, or inline on the thread that calls
  /// TaskHandle::Wait() before any worker got to it. Exceptions thrown by
  /// `fn` are captured and rethrown from Wait().
  ///
  /// This is the single-task sibling of ParallelFor, intended for
  /// producer/consumer pipelining (e.g. prefetching the next oracle label
  /// batch while the caller consumes the current one) rather than data
  /// parallelism.
  TaskHandle Submit(std::function<void()> fn);

  /// Runs `body(i)` for every i in [begin, end), fanned out across the
  /// pool's workers, and blocks until the loop finishes. The calling thread
  /// never executes bodies unless it is itself one of this pool's workers
  /// issuing a nested call (see the class comment).
  ///
  /// Exception propagation: the first exception thrown by any invocation of
  /// `body` is captured, remaining not-yet-started iterations are skipped,
  /// and the exception is rethrown on the calling thread once in-flight
  /// iterations have drained.
  ///
  /// Cancellation: when `cancel` is non-null and fires, workers stop picking
  /// up new iterations (in-flight ones complete). Returns true when every
  /// iteration ran, false when cancellation cut the loop short. An empty
  /// range returns true immediately.
  ///
  /// Iterations may run in any order on any worker thread; `body` must be
  /// safe to invoke concurrently from multiple threads.
  bool ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& body,
                   const CancellationToken* cancel = nullptr);

 private:
  /// Shared bookkeeping of one ParallelFor call.
  struct LoopState {
    const std::function<void(int64_t)>* body = nullptr;
    const CancellationToken* cancel = nullptr;
    /// Chunks not yet finished; the loop is complete when this hits zero.
    std::atomic<int64_t> pending_chunks{0};
    /// Set on first exception or external cancellation: later iterations are
    /// skipped (their chunks still drain pending_chunks).
    std::atomic<bool> abort{false};
    std::atomic<bool> saw_cancel{false};
    std::exception_ptr first_exception;
    std::mutex exception_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  /// One unit of queued work: either a contiguous index chunk [lo, hi) of a
  /// ParallelFor (`state` set) or a single submitted task (`submit` set).
  struct Task {
    std::shared_ptr<LoopState> state;
    std::shared_ptr<TaskHandle::SubmitState> submit;
    int64_t lo = 0;
    int64_t hi = 0;
  };

  /// A worker's mutex-guarded deque. Own pops take the back; thieves take
  /// the front.
  struct Worker {
    std::deque<Task> queue;
    std::mutex mutex;
  };

  void WorkerLoop(size_t worker_index);

  /// Pops one task — own queue first (when `self` is a worker index), then
  /// steals round-robin from the others. Returns false when every queue is
  /// empty. `self < 0` means the caller is not a pool worker.
  bool TryRunOneTask(int self);

  /// ExecuteTask plus the pool's telemetry (dequeue-kind counter, queue
  /// depth, task latency — see docs/TELEMETRY.md); `stolen` records which
  /// dequeue path delivered the task.
  void ExecuteDequeued(const Task& task, bool stolen);

  static void ExecuteTask(const Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  /// Tasks pushed but not yet dequeued, across all queues; lets idle workers
  /// sleep without scanning queues.
  std::atomic<int64_t> queued_tasks_{0};
  std::atomic<bool> stop_{false};
  /// Round-robin cursor for distributing a loop's chunks across queues.
  std::atomic<size_t> push_cursor_{0};
};

}  // namespace oasis

#endif  // OASIS_COMMON_THREAD_POOL_H_
