#include "common/block_fenwick_forest.h"

#include <algorithm>

#include "common/logging.h"

namespace oasis {

Result<BlockFenwickForest> BlockFenwickForest::Build(
    std::span<const double> masses, size_t block_size) {
  if (masses.empty()) {
    return Status::InvalidArgument("BlockFenwickForest: empty mass vector");
  }
  if (block_size == 0 || (block_size & (block_size - 1)) != 0) {
    return Status::InvalidArgument(
        "BlockFenwickForest: block_size must be a power of two");
  }
  BlockFenwickForest forest;
  forest.size_ = masses.size();
  forest.block_size_ = block_size;
  forest.block_shift_ = 0;
  while ((size_t{1} << forest.block_shift_) < block_size) ++forest.block_shift_;

  const size_t num_blocks = (forest.size_ + block_size - 1) / block_size;
  forest.blocks_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block_size;
    const size_t len = std::min(block_size, forest.size_ - begin);
    OASIS_ASSIGN_OR_RETURN(FenwickTree tree,
                           FenwickTree::Build(masses.subspan(begin, len)));
    forest.blocks_.push_back(std::move(tree));
  }
  forest.totals_scratch_.resize(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    forest.totals_scratch_[b] = forest.blocks_[b].Total();
  }
  OASIS_ASSIGN_OR_RETURN(forest.top_,
                         FenwickTree::Build(forest.totals_scratch_));
  forest.fill_scratch_.resize(forest.size_);
  return forest;
}

Status BlockFenwickForest::ShardedRebuild(
    const std::function<Status(size_t)>& rebuild_block, ThreadPool* pool,
    size_t num_shards) {
  const size_t num_blocks = blocks_.size();
  const size_t shards =
      std::min(std::max<size_t>(1, num_shards), num_blocks);
  shard_status_.assign(shards, Status::OK());

  // Each shard rebuilds a contiguous block range. The work partition depends
  // on `shards`, but every per-block computation is independent and every
  // float lands in that block's own tree, so the partition cannot change any
  // result — only which worker produced it.
  const auto shard_body = [&](int64_t s) {
    const size_t begin =
        num_blocks * static_cast<size_t>(s) / shards;
    const size_t end =
        num_blocks * (static_cast<size_t>(s) + 1) / shards;
    for (size_t b = begin; b < end; ++b) {
      Status status = rebuild_block(b);
      if (!status.ok()) {
        shard_status_[static_cast<size_t>(s)] = std::move(status);
        return;
      }
      totals_scratch_[b] = blocks_[b].Total();
    }
  };
  if (pool != nullptr && shards > 1) {
    pool->ParallelFor(0, static_cast<int64_t>(shards), shard_body);
  } else {
    for (size_t s = 0; s < shards; ++s) {
      shard_body(static_cast<int64_t>(s));
    }
  }
  // Deterministic merge discipline: failures surface lowest-shard-first, and
  // the block totals fold into the top tree in block order via a full
  // Rebuild (which also resets any Update()-accumulated drift).
  for (const Status& status : shard_status_) {
    OASIS_RETURN_NOT_OK(status);
  }
  return top_.Rebuild(totals_scratch_);
}

Status BlockFenwickForest::ParallelRebuild(std::span<const double> masses,
                                           ThreadPool* pool,
                                           size_t num_shards) {
  if (masses.size() != size_) {
    return Status::InvalidArgument("BlockFenwickForest: rebuild size mismatch");
  }
  return ShardedRebuild(
      [&](size_t b) {
        const size_t begin = b << block_shift_;
        const size_t len = std::min(block_size_, size_ - begin);
        return blocks_[b].Rebuild(masses.subspan(begin, len));
      },
      pool, num_shards);
}

Status BlockFenwickForest::ParallelRebuildWith(const BlockFill& fill,
                                               ThreadPool* pool,
                                               size_t num_shards) {
  if (!fill) {
    return Status::InvalidArgument("BlockFenwickForest: null fill callback");
  }
  return ShardedRebuild(
      [&](size_t b) {
        const size_t begin = b << block_shift_;
        const size_t len = std::min(block_size_, size_ - begin);
        const std::span<double> out(fill_scratch_.data() + begin, len);
        fill(begin, out);
        return blocks_[b].Rebuild(out);
      },
      pool, num_shards);
}

void BlockFenwickForest::Update(size_t i, double mass) {
  OASIS_DCHECK(i < size_);
  const size_t b = i >> block_shift_;
  blocks_[b].Update(i & (block_size_ - 1), mass);
  top_.Update(b, blocks_[b].Total());
}

size_t BlockFenwickForest::FindQuantile(double target) const {
  const size_t b = top_.FindQuantile(target);
  double remaining = target - top_.PrefixSum(b);
  if (remaining < 0.0) remaining = 0.0;
  return (b << block_shift_) + blocks_[b].FindQuantile(remaining);
}

}  // namespace oasis
