#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {
/// Identifies the pool (and worker slot) owning the current thread, so a
/// nested ParallelFor can tell "I am worker k of this pool — keep executing
/// chunks while I wait" apart from an external caller, which must block
/// instead of becoming an unaccounted extra executor.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;
}  // namespace

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this, static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

/// Lifecycle of one Submit()ed task. `phase` moves 0 (queued) -> 1 (claimed,
/// running) -> 2 (done); the 0->1 transition is a CAS so exactly one thread —
/// the dequeuing worker or a Wait()ing caller — runs the function.
struct ThreadPool::TaskHandle::SubmitState {
  std::function<void()> fn;
  std::atomic<int> phase{0};
  std::exception_ptr exception;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Claims and runs the task if it is still unclaimed; no-op otherwise.
  void TryRun() {
    int expected = 0;
    if (!phase.compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
      return;
    }
    try {
      fn();
    } catch (...) {
      exception = std::current_exception();
    }
    fn = nullptr;  // Release captured resources eagerly.
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      phase.store(2, std::memory_order_release);
    }
    done_cv.notify_all();
  }
};

void ThreadPool::TaskHandle::Wait() {
  if (state_ == nullptr) return;
  // Claim-or-block: running an unclaimed task inline keeps submit-then-wait
  // live even when all workers (including the caller's own worker slot) are
  // occupied.
  state_->TryRun();
  if (state_->phase.load(std::memory_order_acquire) != 2) {
    std::unique_lock<std::mutex> lock(state_->done_mutex);
    state_->done_cv.wait(lock, [&] {
      return state_->phase.load(std::memory_order_acquire) == 2;
    });
  }
  // `exception` is written before the phase-2 release store and only read
  // here after the acquire, so concurrent waiters all see it safely.
  if (state_->exception) std::rethrow_exception(state_->exception);
}

bool ThreadPool::TaskHandle::done() const {
  return state_ == nullptr ||
         state_->phase.load(std::memory_order_acquire) == 2;
}

ThreadPool::TaskHandle ThreadPool::Submit(std::function<void()> fn) {
  OASIS_CHECK(!stop_.load(std::memory_order_acquire));
  OASIS_CHECK(fn != nullptr);
  TaskHandle handle;
  handle.state_ = std::make_shared<TaskHandle::SubmitState>();
  handle.state_->fn = std::move(fn);

  Task task;
  task.submit = handle.state_;
  const size_t target =
      push_cursor_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  queued_tasks_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Pairing the notify with the wake mutex orders it after any worker's
    // predicate check, so no worker sleeps through the new task.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
  return handle;
}

void ThreadPool::ExecuteTask(const Task& task) {
  if (task.submit != nullptr) {
    // Single submitted task; a Wait()ing caller may have claimed it already,
    // in which case TryRun is a no-op.
    task.submit->TryRun();
    return;
  }
  LoopState& state = *task.state;
  for (int64_t i = task.lo; i < task.hi; ++i) {
    if (state.abort.load(std::memory_order_acquire)) break;
    if (state.cancel != nullptr && state.cancel->cancelled()) {
      state.saw_cancel.store(true, std::memory_order_release);
      state.abort.store(true, std::memory_order_release);
      break;
    }
    try {
      (*state.body)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state.exception_mutex);
        if (!state.first_exception) {
          state.first_exception = std::current_exception();
        }
      }
      state.abort.store(true, std::memory_order_release);
      break;
    }
  }
  if (state.pending_chunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last chunk: wake the caller blocked in ParallelFor. Taking the lock
    // orders this notify after the caller's predicate check, avoiding the
    // lost-wakeup race.
    std::lock_guard<std::mutex> lock(state.done_mutex);
    state.done_cv.notify_all();
  }
}

bool ThreadPool::TryRunOneTask(int self) {
  const size_t n = workers_.size();
  // Own queue first (back = most recently pushed, cache-warm)...
  if (self >= 0) {
    Worker& own = *workers_[static_cast<size_t>(self)];
    std::unique_lock<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      Task task = std::move(own.queue.back());
      own.queue.pop_back();
      lock.unlock();
      queued_tasks_.fetch_sub(1, std::memory_order_acq_rel);
      ExecuteDequeued(task, /*stolen=*/false);
      return true;
    }
  }
  // ...then steal the oldest task from a sibling.
  const size_t start = self >= 0 ? static_cast<size_t>(self) + 1 : 0;
  for (size_t offset = 0; offset < n; ++offset) {
    Worker& victim = *workers_[(start + offset) % n];
    std::unique_lock<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    Task task = std::move(victim.queue.front());
    victim.queue.pop_front();
    lock.unlock();
    queued_tasks_.fetch_sub(1, std::memory_order_acq_rel);
    ExecuteDequeued(task, /*stolen=*/true);
    return true;
  }
  return false;
}

void ThreadPool::ExecuteDequeued(const Task& task, bool stolen) {
  if (!OASIS_TELEMETRY_ON) {
    ExecuteTask(task);
    return;
  }
  // Dequeue-kind counters (steal ratio = steal / (own + steal)) and the
  // post-dequeue queue depth. Tasks are coarse (an experiment repeat, a loop
  // chunk), so the steady-clock reads around ExecuteTask are noise.
  static telemetry::Counter& own_tasks = telemetry::DefaultRegistry().AddCounter(
      "oasis_threadpool_tasks_total",
      "Tasks executed by the pool, by dequeue kind (own-queue pop vs steal).",
      {{"kind", "own"}});
  static telemetry::Counter& stolen_tasks =
      telemetry::DefaultRegistry().AddCounter(
          "oasis_threadpool_tasks_total",
          "Tasks executed by the pool, by dequeue kind (own-queue pop vs "
          "steal).",
          {{"kind", "steal"}});
  static telemetry::Gauge& depth = telemetry::DefaultRegistry().AddGauge(
      "oasis_threadpool_queue_depth",
      "Tasks pushed but not yet dequeued, across all worker queues.");
  static telemetry::Histogram& latency =
      telemetry::DefaultRegistry().AddHistogram(
          "oasis_threadpool_task_latency_seconds",
          "Wall-clock execution time of one dequeued task.",
          {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
  (stolen ? stolen_tasks : own_tasks).Increment();
  depth.Set(
      static_cast<double>(queued_tasks_.load(std::memory_order_relaxed)));
  const auto start = std::chrono::steady_clock::now();
  ExecuteTask(task);
  latency.Observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count());
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_pool = this;
  tls_worker_index = static_cast<int>(worker_index);
  for (;;) {
    if (TryRunOneTask(static_cast<int>(worker_index))) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             queued_tasks_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) {
      lock.unlock();
      // Drain on shutdown: a Submit()ed task still queued when the pool is
      // destroyed runs here rather than being silently dropped, so its
      // TaskHandle always completes (ParallelFor chunks cannot reach this
      // point — the destructor contract forbids in-flight loops).
      while (TryRunOneTask(static_cast<int>(worker_index))) {
      }
      return;
    }
  }
}

bool ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& body,
                             const CancellationToken* cancel) {
  OASIS_CHECK(!stop_.load(std::memory_order_acquire));
  if (begin >= end) return true;
  if (cancel != nullptr && cancel->cancelled()) return false;

  auto state = std::make_shared<LoopState>();
  state->body = &body;
  state->cancel = cancel;

  // Chunking: enough chunks that stealing can rebalance uneven iteration
  // costs, but no finer than one index per chunk.
  const int64_t total = end - begin;
  const int64_t target_chunks =
      std::min<int64_t>(total, static_cast<int64_t>(workers_.size()) * 4);
  const int64_t chunk_size = (total + target_chunks - 1) / target_chunks;
  int64_t num_chunks = 0;
  for (int64_t lo = begin; lo < end; lo += chunk_size) ++num_chunks;
  state->pending_chunks.store(num_chunks, std::memory_order_release);

  for (int64_t lo = begin; lo < end; lo += chunk_size) {
    Task task;
    task.state = state;
    task.lo = lo;
    task.hi = std::min(end, lo + chunk_size);
    const size_t target =
        push_cursor_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    {
      std::lock_guard<std::mutex> lock(workers_[target]->mutex);
      workers_[target]->queue.push_back(std::move(task));
    }
    queued_tasks_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    // Pairing the notify with the wake mutex orders it after any worker's
    // predicate check, so no worker sleeps through the new tasks.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();

  // A nested call from one of this pool's workers keeps executing queued
  // chunks (possibly other loops', which is what keeps nesting live); an
  // external caller blocks so the pool never runs more than num_threads()
  // bodies concurrently.
  const bool is_pool_worker = (tls_pool == this);
  while (state->pending_chunks.load(std::memory_order_acquire) > 0) {
    if (is_pool_worker && TryRunOneTask(tls_worker_index)) continue;
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&] {
      return state->pending_chunks.load(std::memory_order_acquire) <= 0;
    });
  }

  if (state->first_exception) std::rethrow_exception(state->first_exception);
  return !state->saw_cancel.load(std::memory_order_acquire);
}

}  // namespace oasis
