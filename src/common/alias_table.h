#ifndef OASIS_COMMON_ALIAS_TABLE_H_
#define OASIS_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace oasis {

/// Walker/Vose alias table for O(1) sampling from a fixed discrete
/// distribution.
///
/// Construction is O(n). This is the production sampling backend for the
/// static importance sampler over large pair pools (the paper's reference
/// implementation used an O(n) linear scan per draw; see Table 3).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative (unnormalised) weights. Fails with
  /// InvalidArgument when weights are empty, contain a negative/NaN entry, or
  /// sum to zero.
  static Result<AliasTable> Build(std::span<const double> weights);

  /// Draws an index in O(1).
  size_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Normalised probability of category i (for tests and diagnostics).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;      // Acceptance probability per slot.
  std::vector<uint32_t> alias_;   // Alias target per slot.
  std::vector<double> normalized_;
};

}  // namespace oasis

#endif  // OASIS_COMMON_ALIAS_TABLE_H_
