#ifndef OASIS_COMMON_ALIAS_TABLE_H_
#define OASIS_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace oasis {

/// Walker/Vose alias table for O(1) sampling from a fixed discrete
/// distribution.
///
/// Construction is O(n). This is the production sampling backend for static
/// distributions: the per-item instrumental of the static importance sampler
/// over large pair pools, and the stratum-weight mixture component of the
/// OASIS kFenwick step path. Table 3 of Marchant & Rubinstein (PVLDB 2017)
/// reports static-IS per-iteration CPU time an order of magnitude above the
/// other methods and growing with pool size — the cost of the O(n)
/// linear-scan draw this table replaces (`bench/table3_runtime.cc`
/// reproduces that shape with both backends). For distributions whose
/// weights change between draws, see the dynamic sibling FenwickTree
/// (O(log n) update/draw vs the O(n) rebuild an alias table would need) —
/// or, when drifts are rare enough to amortise, Rebuild() below refreshes
/// this table in place without allocating (the OASIS kAlias step path).
///
/// Capacity: alias slots are stored as uint32_t, so a table holds at most
/// 2^32 - 1 categories; Build rejects larger inputs explicitly rather than
/// silently truncating indices (see tests/large_k_overflow_test.cc).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative (unnormalised) weights. Fails with
  /// InvalidArgument when weights are empty, contain a negative/NaN entry,
  /// sum to zero, or exceed the uint32_t category capacity.
  static Result<AliasTable> Build(std::span<const double> weights);

  /// Refreshes the table over new weights of the SAME size, reusing every
  /// internal buffer — zero heap allocations once built (the property the
  /// OASIS kAlias step path's rebuild-on-drift loop depends on; pinned by
  /// tests/alias_step_path_test.cc). Same validity rules as Build. On error
  /// the table contents are unspecified and must be rebuilt before sampling.
  Status Rebuild(std::span<const double> weights);

  /// Draws an index in O(1) (two uniform deviates). The table must have been
  /// built (size() > 0).
  size_t Sample(Rng& rng) const;

  /// Number of categories; 0 for a default-constructed (unbuilt) table.
  size_t size() const { return prob_.size(); }

  /// Normalised probability of category i (for tests and diagnostics).
  /// Precondition: i < size(). Values lie in [0, 1] and sum to 1 across all
  /// categories (up to rounding): weight[i] / sum(weights) as passed to
  /// Build.
  double probability(size_t i) const { return normalized_[i]; }

 private:
  /// Shared Vose construction over pre-sized buffers (Build sizes them,
  /// Rebuild reuses them).
  Status BuildInto(std::span<const double> weights);

  std::vector<double> prob_;      // Acceptance probability per slot.
  std::vector<uint32_t> alias_;   // Alias target per slot.
  std::vector<double> normalized_;
  // Vose worklist scratch, retained across Rebuild calls so the refresh
  // never allocates.
  std::vector<double> scaled_scratch_;
  std::vector<uint32_t> small_scratch_;
  std::vector<uint32_t> large_scratch_;
};

}  // namespace oasis

#endif  // OASIS_COMMON_ALIAS_TABLE_H_
