#ifndef OASIS_COMMON_STATUS_H_
#define OASIS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace oasis {

/// Error categories used across the library. The library does not throw
/// exceptions (Google style); fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kCancelled,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error carrier, modelled after Arrow/Abseil Status.
///
/// The OK state carries no message and is cheap to copy. Error states carry a
/// code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error carrier, modelled after arrow::Result.
///
/// A Result<T> holds either a T (status().ok()) or an error Status. Accessing
/// the value of an error Result aborts via CHECK in debug-friendly fashion.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Returns the contained value; must only be called when ok().
  const T& ValueOrDie() const& { return std::get<T>(payload_); }
  T& ValueOrDie() & { return std::get<T>(payload_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(payload_)); }

  /// Alias for ValueOrDie, matching Abseil naming.
  const T& value() const& { return ValueOrDie(); }
  T& value() & { return ValueOrDie(); }
  T&& value() && { return std::move(*this).ValueOrDie(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates an error Status from an expression, Arrow-style.
#define OASIS_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::oasis::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define OASIS_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto OASIS_CONCAT_(_res_, __LINE__) = (rexpr);  \
  if (!OASIS_CONCAT_(_res_, __LINE__).ok())       \
    return OASIS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(OASIS_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define OASIS_CONCAT_INNER_(a, b) a##b
#define OASIS_CONCAT_(a, b) OASIS_CONCAT_INNER_(a, b)

}  // namespace oasis

#endif  // OASIS_COMMON_STATUS_H_
