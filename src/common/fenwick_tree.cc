#include "common/fenwick_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oasis {

Status FenwickTree::ValidateMass(double mass) {
  if (std::isnan(mass) || std::isinf(mass) || mass < 0.0) {
    return Status::InvalidArgument("FenwickTree: mass must be finite and >= 0");
  }
  return Status::OK();
}

void FenwickTree::InitTree() {
  const size_t n = values_.size();
  for (size_t i = 1; i <= n; ++i) tree_[i] = values_[i - 1];
  // Bottom-up accumulation: each node folds into its parent exactly once, so
  // the whole build is O(n).
  for (size_t i = 1; i <= n; ++i) {
    const size_t parent = i + (i & (~i + 1));
    if (parent <= n) tree_[parent] += tree_[i];
  }
  top_bit_ = 1;
  while (top_bit_ * 2 <= n) top_bit_ *= 2;
}

Result<FenwickTree> FenwickTree::Build(std::span<const double> masses) {
  if (masses.empty()) {
    return Status::InvalidArgument("FenwickTree: empty mass vector");
  }
  for (double m : masses) OASIS_RETURN_NOT_OK(ValidateMass(m));
  FenwickTree tree;
  tree.values_.assign(masses.begin(), masses.end());
  tree.tree_.assign(masses.size() + 1, 0.0);
  tree.InitTree();
  return tree;
}

Status FenwickTree::Rebuild(std::span<const double> masses) {
  if (masses.size() != values_.size()) {
    return Status::InvalidArgument("FenwickTree: Rebuild size mismatch");
  }
  for (double m : masses) OASIS_RETURN_NOT_OK(ValidateMass(m));
  std::copy(masses.begin(), masses.end(), values_.begin());
  InitTree();
  return Status::OK();
}

void FenwickTree::Update(size_t i, double mass) {
  OASIS_DCHECK(i < values_.size());
  OASIS_DCHECK(!std::isnan(mass) && !std::isinf(mass) && mass >= 0.0);
  const double delta = mass - values_[i];
  values_[i] = mass;
  for (size_t j = i + 1; j <= values_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

double FenwickTree::PrefixSum(size_t count) const {
  OASIS_DCHECK(count <= values_.size());
  double sum = 0.0;
  for (size_t j = count; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

size_t FenwickTree::FindQuantile(double target) const {
  const size_t n = values_.size();
  OASIS_DCHECK(n > 0);
  // Binary-lifting descent: after the loop `idx` is the largest count whose
  // prefix sum is <= target, so index `idx` (0-based) is the inverse-CDF
  // answer. The <= comparison steps *past* zero-mass runs, so indices with
  // value(i) == 0 are never selected for any target < Total().
  size_t idx = 0;
  double remaining = target;
  for (size_t step = top_bit_; step > 0; step >>= 1) {
    const size_t next = idx + step;
    if (next <= n && tree_[next] <= remaining) {
      remaining -= tree_[next];
      idx = next;
    }
  }
  if (idx >= n) idx = n - 1;  // target >= Total(): clamp into range.
  // Guard against landing on a zero mass through the clamp above or
  // floating-point edge cases: back off to the nearest positive mass.
  while (idx > 0 && values_[idx] <= 0.0) --idx;
  return idx;
}

}  // namespace oasis
