#include "eval/measures.h"

#include <cmath>

#include "common/logging.h"

namespace oasis {

MaybeValue FAlpha(double tp, double fp, double fn, double alpha) {
  OASIS_DCHECK(alpha >= 0.0 && alpha <= 1.0);
  MaybeValue out;
  const double denom = alpha * (tp + fp) + (1.0 - alpha) * (tp + fn);
  if (denom <= 0.0) return out;
  out.value = tp / denom;
  out.defined = true;
  return out;
}

Measures ComputeMeasures(const ConfusionCounts& counts, double alpha) {
  Measures m;
  const double tp = static_cast<double>(counts.true_positives);
  const double fp = static_cast<double>(counts.false_positives);
  const double fn = static_cast<double>(counts.false_negatives);

  const MaybeValue f = FAlpha(tp, fp, fn, alpha);
  m.f_alpha = f.value;
  m.f_defined = f.defined;

  const MaybeValue p = FAlpha(tp, fp, fn, 1.0);
  m.precision = p.value;
  m.precision_defined = p.defined;

  const MaybeValue r = FAlpha(tp, fp, fn, 0.0);
  m.recall = r.value;
  m.recall_defined = r.defined;
  return m;
}

double AlphaFromBeta(double beta) { return 1.0 / (1.0 + beta * beta); }

double BetaFromAlpha(double alpha) {
  OASIS_CHECK(alpha > 0.0 && alpha <= 1.0);
  return std::sqrt(1.0 / alpha - 1.0);
}

}  // namespace oasis
