#include "eval/confusion.h"

namespace oasis {

void ConfusionCounts::Add(bool truth, bool prediction) {
  if (truth && prediction) {
    ++true_positives;
  } else if (!truth && prediction) {
    ++false_positives;
  } else if (truth && !prediction) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  true_negatives += other.true_negatives;
  return *this;
}

Result<ConfusionCounts> CountConfusion(std::span<const uint8_t> truth,
                                       std::span<const uint8_t> predictions) {
  if (truth.size() != predictions.size()) {
    return Status::InvalidArgument("CountConfusion: length mismatch");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("CountConfusion: empty input");
  }
  ConfusionCounts counts;
  for (size_t i = 0; i < truth.size(); ++i) {
    counts.Add(truth[i] != 0, predictions[i] != 0);
  }
  return counts;
}

}  // namespace oasis
