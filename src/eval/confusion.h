#ifndef OASIS_EVAL_CONFUSION_H_
#define OASIS_EVAL_CONFUSION_H_

#include <cstdint>
#include <span>

#include "common/status.h"

namespace oasis {

/// Pairwise confusion counts for a binary (match / non-match) task.
struct ConfusionCounts {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t true_negatives = 0;

  int64_t total() const {
    return true_positives + false_positives + false_negatives + true_negatives;
  }
  int64_t actual_positives() const { return true_positives + false_negatives; }
  int64_t predicted_positives() const { return true_positives + false_positives; }

  /// Accumulates one (truth, prediction) observation.
  void Add(bool truth, bool prediction);

  ConfusionCounts& operator+=(const ConfusionCounts& other);
};

/// Tallies confusion counts over parallel truth/prediction vectors (entries
/// are 0/1). Fails when the spans differ in length or are empty.
Result<ConfusionCounts> CountConfusion(std::span<const uint8_t> truth,
                                       std::span<const uint8_t> predictions);

}  // namespace oasis

#endif  // OASIS_EVAL_CONFUSION_H_
