#ifndef OASIS_EVAL_MEASURES_H_
#define OASIS_EVAL_MEASURES_H_

#include "eval/confusion.h"

namespace oasis {

/// Precision, recall and the alpha-weighted F-measure of the paper's Eqn. 1:
///
///   F_alpha = TP / (alpha (TP + FP) + (1 - alpha) (TP + FN))
///
/// alpha = 1 is precision, alpha = 0 is recall, alpha = 1/2 the balanced
/// F-measure (harmonic mean of precision and recall). The relation to the
/// usual beta-parametrisation is alpha = 1 / (1 + beta^2).
struct Measures {
  double f_alpha = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  /// False when the respective denominator is zero (no predicted and/or no
  /// actual positives), in which case the values above are meaningless.
  bool f_defined = false;
  bool precision_defined = false;
  bool recall_defined = false;
};

/// F_alpha from raw counts; returns {value, defined}. Not defined when the
/// denominator alpha(TP+FP) + (1-alpha)(TP+FN) is zero.
struct MaybeValue {
  double value = 0.0;
  bool defined = false;
};
MaybeValue FAlpha(double tp, double fp, double fn, double alpha);

/// All three measures from confusion counts.
Measures ComputeMeasures(const ConfusionCounts& counts, double alpha);

/// Converts between the alpha-weight of Eqn. 1 and the F-beta parametrisation.
double AlphaFromBeta(double beta);
double BetaFromAlpha(double alpha);

}  // namespace oasis

#endif  // OASIS_EVAL_MEASURES_H_
