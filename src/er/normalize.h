#ifndef OASIS_ER_NORMALIZE_H_
#define OASIS_ER_NORMALIZE_H_

#include <string>

namespace oasis {
namespace er {

/// Canonicalises a string for comparison, per the paper's pre-processing
/// step: lower-cases ASCII, transliterates common Latin-1 accented bytes to
/// their base letter, replaces every other non-alphanumeric byte with a
/// space, and collapses runs of whitespace to single spaces (trimming the
/// ends).
std::string NormalizeString(const std::string& input);

/// Lower-cases ASCII letters only.
std::string ToLowerAscii(const std::string& input);

/// True when the normalised form of `input` is empty (nothing comparable).
bool IsBlankAfterNormalize(const std::string& input);

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_NORMALIZE_H_
