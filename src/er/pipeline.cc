#include "er/pipeline.h"

#include <utility>

#include "common/logging.h"
#include "er/normalize.h"
#include "er/similarity.h"
#include "er/tokenize.h"

namespace oasis {
namespace er {

Result<CachedFeaturizer> CachedFeaturizer::Build(const Database& left,
                                                 const Database& right) {
  OASIS_RETURN_NOT_OK(left.Validate());
  OASIS_RETURN_NOT_OK(right.Validate());
  if (left.schema.num_fields() != right.schema.num_fields()) {
    return Status::InvalidArgument("CachedFeaturizer: schema arity mismatch");
  }
  for (size_t f = 0; f < left.schema.num_fields(); ++f) {
    if (left.schema.field(f).kind != right.schema.field(f).kind) {
      return Status::InvalidArgument("CachedFeaturizer: field kind mismatch");
    }
  }

  CachedFeaturizer featurizer;
  featurizer.schema_ = left.schema;
  featurizer.field_slot_.resize(left.schema.num_fields(), -1);
  featurizer.vectorizers_.resize(left.schema.num_fields());

  int trigram_slot = 0;
  int vector_slot = 0;
  int number_slot = 0;
  for (size_t f = 0; f < left.schema.num_fields(); ++f) {
    switch (left.schema.field(f).kind) {
      case FieldKind::kShortText:
        featurizer.field_slot_[f] = trigram_slot++;
        break;
      case FieldKind::kLongText: {
        featurizer.field_slot_[f] = vector_slot++;
        std::vector<std::vector<std::string>> corpus;
        for (const Database* db : {&left, &right}) {
          for (const Record& rec : db->records) {
            const FieldValue& value = rec.values[f];
            if (value.missing) continue;
            corpus.push_back(WordTokens(NormalizeString(value.text)));
          }
        }
        if (corpus.empty()) {
          return Status::InvalidArgument(
              "CachedFeaturizer: no values for long-text field '" +
              left.schema.field(f).name + "'");
        }
        OASIS_RETURN_NOT_OK(featurizer.vectorizers_[f].Fit(corpus));
        break;
      }
      case FieldKind::kNumeric:
        featurizer.field_slot_[f] = number_slot++;
        break;
    }
  }

  featurizer.left_cache_.reserve(left.records.size());
  for (const Record& rec : left.records) {
    featurizer.left_cache_.push_back(featurizer.CacheRecord(rec));
  }
  featurizer.right_cache_.reserve(right.records.size());
  for (const Record& rec : right.records) {
    featurizer.right_cache_.push_back(featurizer.CacheRecord(rec));
  }
  return featurizer;
}

CachedFeaturizer::CachedRecord CachedFeaturizer::CacheRecord(
    const Record& record) const {
  CachedRecord cached;
  cached.missing.resize(schema_.num_fields(), 0);
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    const FieldValue& value = record.values[f];
    cached.missing[f] = value.missing ? 1 : 0;
    switch (schema_.field(f).kind) {
      case FieldKind::kShortText:
        cached.trigrams.push_back(
            value.missing ? std::vector<std::string>{}
                          : NgramSet(NormalizeString(value.text), 3));
        break;
      case FieldKind::kLongText:
        cached.vectors.push_back(
            value.missing
                ? SparseVector{}
                : vectorizers_[f].Transform(WordTokens(NormalizeString(value.text))));
        break;
      case FieldKind::kNumeric:
        cached.numbers.push_back(value.missing ? 0.0 : value.number);
        break;
    }
  }
  return cached;
}

std::vector<double> CachedFeaturizer::Features(int32_t left_index,
                                               int32_t right_index) const {
  OASIS_DCHECK(left_index >= 0 && left_index < left_size());
  OASIS_DCHECK(right_index >= 0 && right_index < right_size());
  const CachedRecord& a = left_cache_[static_cast<size_t>(left_index)];
  const CachedRecord& b = right_cache_[static_cast<size_t>(right_index)];

  std::vector<double> features(schema_.num_fields(), 0.5);
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    if (a.missing[f] != 0 || b.missing[f] != 0) continue;  // Neutral value.
    const size_t slot = static_cast<size_t>(field_slot_[f]);
    switch (schema_.field(f).kind) {
      case FieldKind::kShortText:
        features[f] = JaccardSimilarity(a.trigrams[slot], b.trigrams[slot]);
        break;
      case FieldKind::kLongText:
        features[f] = CosineSimilarity(a.vectors[slot], b.vectors[slot]);
        break;
      case FieldKind::kNumeric:
        features[f] = NumericSimilarity(a.numbers[slot], b.numbers[slot]);
        break;
    }
  }
  return features;
}

Result<ErPipeline> ErPipeline::Create(const Database* left, const Database* right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("ErPipeline: null database");
  }
  ErPipeline pipeline;
  OASIS_ASSIGN_OR_RETURN(pipeline.featurizer_,
                         CachedFeaturizer::Build(*left, *right));
  return pipeline;
}

Status ErPipeline::Train(const TrainingSet& training,
                         std::unique_ptr<classify::Classifier> model, Rng& rng) {
  if (model == nullptr) return Status::InvalidArgument("ErPipeline: null model");
  if (training.pairs.size() != training.labels.size() || training.pairs.empty()) {
    return Status::InvalidArgument("ErPipeline: bad training set");
  }

  classify::Dataset data(featurizer_.num_features());
  for (size_t i = 0; i < training.pairs.size(); ++i) {
    const RecordPair pair = training.pairs[i];
    OASIS_RETURN_NOT_OK(
        data.Add(featurizer_.Features(pair.left, pair.right),
                 training.labels[i] != 0));
  }
  OASIS_RETURN_NOT_OK(scaler_.Fit(data));
  classify::Dataset scaled = scaler_.Transform(data);
  OASIS_RETURN_NOT_OK(model->Fit(scaled, rng));
  model_ = std::move(model);
  return Status::OK();
}

Result<ScoredPool> ErPipeline::ScorePairs(std::span<const RecordPair> pairs) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("ErPipeline: Train before ScorePairs");
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("ErPipeline: empty pair set");
  }
  ScoredPool pool;
  pool.scores.reserve(pairs.size());
  pool.predictions.reserve(pairs.size());
  pool.scores_are_probabilities = model_->probabilistic();
  pool.threshold = model_->threshold();
  for (const RecordPair& pair : pairs) {
    const double score = ScorePair(pair);
    pool.scores.push_back(score);
    pool.predictions.push_back(score >= pool.threshold ? 1 : 0);
  }
  return pool;
}

double ErPipeline::ScorePair(RecordPair pair) const {
  OASIS_DCHECK(model_ != nullptr);
  std::vector<double> features = featurizer_.Features(pair.left, pair.right);
  scaler_.TransformInPlace(features);
  return model_->Score(features);
}

}  // namespace er
}  // namespace oasis
