#ifndef OASIS_ER_BLOCKING_H_
#define OASIS_ER_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/pool.h"
#include "er/record.h"

namespace oasis {
namespace er {

/// Options for token blocking.
struct BlockingOptions {
  /// Field whose word tokens key the blocks.
  int field_index = 0;
  /// Blocks larger than this are dropped entirely (stop-word guard); 0
  /// disables the cap.
  size_t max_block_size = 1000;
};

/// Standard token blocking (the linear-scan candidate-reduction stage of the
/// typical ER pipeline described in Sec. 2.1): two records become a candidate
/// pair when they share at least one word token in the key field. Returns
/// deduplicated candidate pairs; candidates are NOT labelled (callers attach
/// ground truth when known).
///
/// The paper's evaluation pools bypass blocking (they subsample Z directly);
/// blocking is provided as part of the full pipeline substrate and exercised
/// by the deduplication example.
Result<std::vector<RecordPair>> TokenBlocking(const Database& left,
                                              const Database& right,
                                              const BlockingOptions& options);

/// Deduplication variant over a single database; emits pairs with
/// left < right only.
Result<std::vector<RecordPair>> TokenBlockingDedup(const Database& db,
                                                   const BlockingOptions& options);

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_BLOCKING_H_
