#ifndef OASIS_ER_EDIT_DISTANCE_H_
#define OASIS_ER_EDIT_DISTANCE_H_

#include <cstdint>
#include <string>

namespace oasis {
namespace er {

/// Levenshtein edit distance (unit-cost insert/delete/substitute), computed
/// with the two-row dynamic program in O(|a|*|b|) time and O(min) space.
int64_t LevenshteinDistance(const std::string& a, const std::string& b);

/// Levenshtein similarity: 1 - distance / max(|a|, |b|); 1 when both are
/// empty. A standard attribute-level similarity in ER scoring stages
/// (Sec. 2.1.1 lists edit distance among the usual features).
double LevenshteinSimilarity(const std::string& a, const std::string& b);

/// Damerau-Levenshtein distance (additionally counts adjacent-character
/// transposition as one edit) — the classic typo model; restricted variant
/// (optimal string alignment).
int64_t DamerauLevenshteinDistance(const std::string& a, const std::string& b);

/// Jaro similarity in [0, 1]: the match-and-transposition measure behind
/// most record-linkage name comparators.
double JaroSimilarity(const std::string& a, const std::string& b);

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `prefix_scale` (standard 0.1, capped at 0.25).
double JaroWinklerSimilarity(const std::string& a, const std::string& b,
                             double prefix_scale = 0.1);

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_EDIT_DISTANCE_H_
