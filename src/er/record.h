#ifndef OASIS_ER_RECORD_H_
#define OASIS_ER_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace er {

/// How a field participates in similarity scoring (Sec. 6.1.2 of the paper):
/// short text fields are compared with trigram Jaccard, long text fields with
/// tf-idf cosine, numeric fields with normalised absolute difference.
enum class FieldKind { kShortText, kLongText, kNumeric };

/// One field declaration in a record schema.
struct FieldSpec {
  std::string name;
  FieldKind kind = FieldKind::kShortText;
};

/// Ordered collection of field declarations shared by all records of a
/// database.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields);

  size_t num_fields() const { return fields_.size(); }
  const FieldSpec& field(size_t i) const { return fields_[i]; }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Index of the field with the given name, or -1.
  int FieldIndex(const std::string& name) const;

 private:
  std::vector<FieldSpec> fields_;
};

/// One field value: text payload for text fields, numeric payload for
/// numeric fields; `missing` models incomplete records (the paper's
/// pre-processing imputes these).
struct FieldValue {
  std::string text;
  double number = 0.0;
  bool missing = false;

  static FieldValue Text(std::string value) {
    FieldValue v;
    v.text = std::move(value);
    return v;
  }
  static FieldValue Number(double value) {
    FieldValue v;
    v.number = value;
    return v;
  }
  static FieldValue Missing() {
    FieldValue v;
    v.missing = true;
    return v;
  }
};

/// A record is a row of field values aligned with a Schema.
struct Record {
  std::vector<FieldValue> values;
};

/// A database: schema plus rows. Entity identity is external (held by the
/// dataset's ground-truth relation), mirroring Definition 1.
struct Database {
  Schema schema;
  std::vector<Record> records;

  int64_t size() const { return static_cast<int64_t>(records.size()); }

  /// Checks that every record matches the schema arity.
  Status Validate() const;
};

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_RECORD_H_
