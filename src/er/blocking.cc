#include "er/blocking.h"

#include <algorithm>
#include <unordered_map>

#include "er/normalize.h"
#include "er/tokenize.h"

namespace oasis {
namespace er {

namespace {

/// token -> record indices holding that token in the key field.
using BlockIndex = std::unordered_map<std::string, std::vector<int32_t>>;

Result<BlockIndex> BuildIndex(const Database& db, int field_index) {
  if (field_index < 0 ||
      static_cast<size_t>(field_index) >= db.schema.num_fields()) {
    return Status::InvalidArgument("TokenBlocking: field index out of range");
  }
  BlockIndex index;
  for (int32_t i = 0; i < static_cast<int32_t>(db.records.size()); ++i) {
    const FieldValue& value = db.records[static_cast<size_t>(i)]
                                  .values[static_cast<size_t>(field_index)];
    if (value.missing) continue;
    std::vector<std::string> tokens = WordTokens(NormalizeString(value.text));
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const auto& token : tokens) index[token].push_back(i);
  }
  return index;
}

std::vector<RecordPair> DedupePairs(std::vector<RecordPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const RecordPair& a, const RecordPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace

Result<std::vector<RecordPair>> TokenBlocking(const Database& left,
                                              const Database& right,
                                              const BlockingOptions& options) {
  OASIS_RETURN_NOT_OK(left.Validate());
  OASIS_RETURN_NOT_OK(right.Validate());
  OASIS_ASSIGN_OR_RETURN(BlockIndex left_index, BuildIndex(left, options.field_index));
  OASIS_ASSIGN_OR_RETURN(BlockIndex right_index,
                         BuildIndex(right, options.field_index));

  std::vector<RecordPair> candidates;
  for (const auto& [token, left_ids] : left_index) {
    auto it = right_index.find(token);
    if (it == right_index.end()) continue;
    const auto& right_ids = it->second;
    if (options.max_block_size > 0 &&
        left_ids.size() * right_ids.size() > options.max_block_size) {
      continue;  // Stop-word block: too unselective to be useful.
    }
    for (int32_t l : left_ids) {
      for (int32_t r : right_ids) candidates.push_back({l, r});
    }
  }
  return DedupePairs(std::move(candidates));
}

Result<std::vector<RecordPair>> TokenBlockingDedup(const Database& db,
                                                   const BlockingOptions& options) {
  OASIS_RETURN_NOT_OK(db.Validate());
  OASIS_ASSIGN_OR_RETURN(BlockIndex index, BuildIndex(db, options.field_index));
  std::vector<RecordPair> candidates;
  for (const auto& [token, ids] : index) {
    if (options.max_block_size > 0 &&
        ids.size() * (ids.size() - 1) / 2 > options.max_block_size) {
      continue;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        candidates.push_back({std::min(ids[i], ids[j]), std::max(ids[i], ids[j])});
      }
    }
  }
  return DedupePairs(std::move(candidates));
}

}  // namespace er
}  // namespace oasis
