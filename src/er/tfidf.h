#ifndef OASIS_ER_TFIDF_H_
#define OASIS_ER_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace er {

/// Sparse L2-normalised term-weight vector: parallel (term id, weight) pairs
/// sorted by term id, ready for linear-merge cosine similarity.
struct SparseVector {
  std::vector<int32_t> ids;
  std::vector<double> weights;

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
};

/// Cosine similarity of two sparse vectors (assumed L2-normalised: the dot
/// product). Empty vectors yield 0.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// tf-idf vectoriser over word-token documents — the long-text similarity
/// feature of the paper's pipeline (Sec. 6.1.2).
///
/// Fit() learns the vocabulary and smoothed idf weights
/// (idf = ln((1 + N) / (1 + df)) + 1, scikit-learn's convention); Transform()
/// produces L2-normalised tf-idf vectors, mapping unseen terms to nothing.
class TfIdfVectorizer {
 public:
  /// Learns vocabulary and document frequencies from tokenised documents.
  Status Fit(const std::vector<std::vector<std::string>>& documents);

  /// Transforms a tokenised document; Fit must have succeeded first.
  SparseVector Transform(const std::vector<std::string>& tokens) const;

  size_t vocabulary_size() const { return vocabulary_.size(); }
  bool fitted() const { return fitted_; }

  /// idf weight of a term; 0 when out-of-vocabulary (diagnostics/tests).
  double IdfOf(const std::string& term) const;

 private:
  std::unordered_map<std::string, int32_t> vocabulary_;
  std::vector<double> idf_;
  bool fitted_ = false;
};

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_TFIDF_H_
