#ifndef OASIS_ER_CLUSTERING_H_
#define OASIS_ER_CLUSTERING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "er/pool.h"
#include "eval/measures.h"

namespace oasis {
namespace er {

/// Union-find (disjoint set union) with path halving and union by size —
/// the standard device for turning a predicted match relation into entity
/// clusters via transitive closure.
class UnionFind {
 public:
  explicit UnionFind(int64_t size);

  /// Representative of the set containing `item`.
  int64_t Find(int64_t item);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(int64_t a, int64_t b);

  int64_t num_sets() const { return num_sets_; }
  int64_t size() const { return static_cast<int64_t>(parent_.size()); }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> set_size_;
  int64_t num_sets_;
};

/// A clustering: cluster id per item, plus the member lists.
struct Clustering {
  std::vector<int64_t> cluster_of;        // item -> cluster id (0..K-1)
  std::vector<std::vector<int64_t>> clusters;

  int64_t num_clusters() const { return static_cast<int64_t>(clusters.size()); }
  int64_t num_items() const { return static_cast<int64_t>(cluster_of.size()); }
};

/// Builds the transitive closure of a match-pair relation over `num_items`
/// records: every connected component becomes one entity cluster. This is
/// the "matching" stage output the paper's Remark 2 contrasts with pairwise
/// evaluation.
Result<Clustering> ClusterFromPairs(int64_t num_items,
                                    std::span<const RecordPair> match_pairs);

/// Pairwise measures induced by two clusterings: every within-cluster pair
/// of `predicted` is a predicted match, every within-cluster pair of `truth`
/// a true match; precision/recall/F follow from the pair counts (computed in
/// O(items + clusters) via cluster-intersection counting, not by enumerating
/// pairs). This is the cluster-based evaluation route of Menestrina et al.
/// that the paper points to when entities have many records.
Result<Measures> PairwiseMeasuresFromClusterings(const Clustering& truth,
                                                 const Clustering& predicted,
                                                 double alpha = 0.5);

/// Cluster-level K-measure style statistics: fraction of predicted clusters
/// that exactly equal a truth cluster, and vice versa.
struct ClusterAgreement {
  double predicted_exact = 0.0;  // fraction of predicted clusters exactly right
  double truth_recovered = 0.0;  // fraction of truth clusters exactly recovered
};
Result<ClusterAgreement> ExactClusterAgreement(const Clustering& truth,
                                               const Clustering& predicted);

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_CLUSTERING_H_
