#ifndef OASIS_ER_TOKENIZE_H_
#define OASIS_ER_TOKENIZE_H_

#include <string>
#include <vector>

namespace oasis {
namespace er {

/// Splits a (normalised) string into whitespace-delimited word tokens.
std::vector<std::string> WordTokens(const std::string& text);

/// Character n-grams of a (normalised) string, including word-boundary
/// padding with '#': "abc" with n=3 yields {"##a", "#ab", "abc", "bc#",
/// "c##"}. Padding keeps short strings comparable, the standard trick for
/// trigram Jaccard similarity.
std::vector<std::string> CharacterNgrams(const std::string& text, size_t n);

/// Sorted, deduplicated n-gram set — the representation consumed by Jaccard.
std::vector<std::string> NgramSet(const std::string& text, size_t n);

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_TOKENIZE_H_
