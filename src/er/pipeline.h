#ifndef OASIS_ER_PIPELINE_H_
#define OASIS_ER_PIPELINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "classify/scaler.h"
#include "common/status.h"
#include "er/pool.h"
#include "er/record.h"
#include "er/tfidf.h"
#include "sampling/sampler.h"

namespace oasis {
namespace er {

/// Pairwise feature extractor with per-record caching.
///
/// Pre-computes, for every record of both databases: trigram sets for short
/// text fields, tf-idf vectors for long text fields, and numeric payloads.
/// Pair features then reduce to set intersections / sparse dot products,
/// which is what makes featurising the paper's ~700k-pair pools cheap.
class CachedFeaturizer {
 public:
  /// Constructs an empty featurizer; use Build() to obtain a usable one.
  CachedFeaturizer() = default;

  /// Fits tf-idf vocabularies and builds both record caches. For
  /// deduplication pass the same database twice.
  static Result<CachedFeaturizer> Build(const Database& left, const Database& right);

  /// Feature vector (one similarity per schema field) for a pair of cached
  /// records.
  std::vector<double> Features(int32_t left_index, int32_t right_index) const;

  size_t num_features() const { return schema_.num_fields(); }
  const Schema& schema() const { return schema_; }
  int64_t left_size() const { return static_cast<int64_t>(left_cache_.size()); }
  int64_t right_size() const { return static_cast<int64_t>(right_cache_.size()); }

 private:
  /// Cached comparison representation of one record.
  struct CachedRecord {
    // Per short-text field: sorted trigram set.
    std::vector<std::vector<std::string>> trigrams;
    // Per long-text field: L2-normalised tf-idf vector.
    std::vector<SparseVector> vectors;
    // Per numeric field: value.
    std::vector<double> numbers;
    // Per field: missing flag.
    std::vector<uint8_t> missing;
  };

  CachedRecord CacheRecord(const Record& record) const;

  Schema schema_;
  // Field index -> slot within the per-kind arrays of CachedRecord.
  std::vector<int> field_slot_;
  std::vector<TfIdfVectorizer> vectorizers_;
  std::vector<CachedRecord> left_cache_;
  std::vector<CachedRecord> right_cache_;
};

/// A labelled training set of record pairs for the pair classifier.
struct TrainingSet {
  std::vector<RecordPair> pairs;
  std::vector<uint8_t> labels;

  size_t size() const { return pairs.size(); }
};

/// End-to-end scoring pipeline (paper Sec. 6.1.2): similarity features over
/// record pairs -> standardisation -> binary classifier -> similarity scores
/// and predicted labels.
class ErPipeline {
 public:
  /// Builds the featurizer caches. The databases must outlive the pipeline.
  static Result<ErPipeline> Create(const Database* left, const Database* right);

  /// Trains the pair classifier (taking ownership) on the training set.
  Status Train(const TrainingSet& training, std::unique_ptr<classify::Classifier> model,
               Rng& rng);

  /// Scores a set of candidate pairs into the evaluation-pool representation
  /// consumed by the samplers. Train must have succeeded.
  Result<ScoredPool> ScorePairs(std::span<const RecordPair> pairs) const;

  /// Raw classifier score for one pair.
  double ScorePair(RecordPair pair) const;

  const classify::Classifier& classifier() const { return *model_; }
  const CachedFeaturizer& featurizer() const { return featurizer_; }
  bool trained() const { return model_ != nullptr; }

 private:
  ErPipeline() = default;

  CachedFeaturizer featurizer_;
  classify::StandardScaler scaler_;
  std::unique_ptr<classify::Classifier> model_;
};

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_PIPELINE_H_
