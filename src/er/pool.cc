#include "er/pool.h"

#include <limits>

namespace oasis {
namespace er {

void PairPool::Add(RecordPair pair, bool is_match) {
  pairs_.push_back(pair);
  truth_.push_back(is_match ? 1 : 0);
  if (is_match) ++num_matches_;
}

double PairPool::ImbalanceRatio() const {
  if (num_matches_ == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(size() - num_matches_) /
         static_cast<double>(num_matches_);
}

}  // namespace er
}  // namespace oasis
