#ifndef OASIS_ER_SIMILARITY_H_
#define OASIS_ER_SIMILARITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "er/record.h"
#include "er/tfidf.h"

namespace oasis {
namespace er {

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two sorted, deduplicated string
/// sets. Both empty -> 1 (identical emptiness); one empty -> 0.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Trigram Jaccard similarity of two raw strings (normalised internally) —
/// the paper's short-text feature.
double TrigramJaccard(const std::string& a, const std::string& b);

/// Normalised absolute difference similarity for numerics:
/// 1 - |a - b| / (|a| + |b|), clamped to [0, 1]; 1 when both are 0 — the
/// paper's numeric feature, oriented so larger = more similar.
double NumericSimilarity(double a, double b);

/// Pairwise feature extractor implementing the paper's scoring stage: one
/// scalar similarity per schema field (trigram Jaccard for short text,
/// tf-idf cosine for long text, normalised absolute difference for
/// numerics). Missing values yield the neutral feature value 0.5.
class SimilarityFeaturizer {
 public:
  /// Builds a featurizer for the schema, fitting one tf-idf vocabulary per
  /// long-text field over the union of both databases' values.
  static Result<SimilarityFeaturizer> Fit(const Database& left,
                                          const Database& right);

  /// Feature vector (one entry per schema field) for a record pair.
  std::vector<double> Features(const Record& left, const Record& right) const;

  size_t num_features() const { return schema_.num_fields(); }
  const Schema& schema() const { return schema_; }

 private:
  SimilarityFeaturizer() = default;

  Schema schema_;
  // One fitted vectoriser per field (only populated for kLongText fields).
  std::vector<TfIdfVectorizer> vectorizers_;
};

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_SIMILARITY_H_
