#include "er/normalize.h"

#include <cctype>

namespace oasis {
namespace er {

namespace {

/// Maps Latin-1 accented code points (0xC0-0xFF range, presented as single
/// bytes) to a base ASCII letter; returns 0 for bytes without a mapping.
char TransliterateLatin1(unsigned char byte) {
  if (byte >= 0xC0 && byte <= 0xC5) return 'a';
  if (byte == 0xC7) return 'c';
  if (byte >= 0xC8 && byte <= 0xCB) return 'e';
  if (byte >= 0xCC && byte <= 0xCF) return 'i';
  if (byte == 0xD1) return 'n';
  if (byte >= 0xD2 && byte <= 0xD6) return 'o';
  if (byte >= 0xD9 && byte <= 0xDC) return 'u';
  if (byte == 0xDD) return 'y';
  if (byte >= 0xE0 && byte <= 0xE5) return 'a';
  if (byte == 0xE7) return 'c';
  if (byte >= 0xE8 && byte <= 0xEB) return 'e';
  if (byte >= 0xEC && byte <= 0xEF) return 'i';
  if (byte == 0xF1) return 'n';
  if (byte >= 0xF2 && byte <= 0xF6) return 'o';
  if (byte >= 0xF9 && byte <= 0xFC) return 'u';
  if (byte == 0xFD || byte == 0xFF) return 'y';
  return 0;
}

}  // namespace

std::string NormalizeString(const std::string& input) {
  std::string out;
  out.reserve(input.size());
  bool pending_space = false;
  for (unsigned char byte : input) {
    char c = 0;
    if (std::isalnum(byte)) {
      c = static_cast<char>(std::tolower(byte));
    } else {
      c = TransliterateLatin1(byte);
    }
    if (c != 0) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
    } else {
      pending_space = true;  // Symbols/whitespace become (collapsed) spaces.
    }
  }
  return out;
}

std::string ToLowerAscii(const std::string& input) {
  std::string out = input;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsBlankAfterNormalize(const std::string& input) {
  return NormalizeString(input).empty();
}

}  // namespace er
}  // namespace oasis
