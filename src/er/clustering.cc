#include "er/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace oasis {
namespace er {

UnionFind::UnionFind(int64_t size) : num_sets_(size) {
  OASIS_CHECK_GE(size, 0);
  parent_.resize(static_cast<size_t>(size));
  set_size_.assign(static_cast<size_t>(size), 1);
  for (int64_t i = 0; i < size; ++i) parent_[static_cast<size_t>(i)] = i;
}

int64_t UnionFind::Find(int64_t item) {
  OASIS_DCHECK(item >= 0 && item < size());
  // Path halving: every other node points to its grandparent.
  while (parent_[static_cast<size_t>(item)] != item) {
    const int64_t grandparent =
        parent_[static_cast<size_t>(parent_[static_cast<size_t>(item)])];
    parent_[static_cast<size_t>(item)] = grandparent;
    item = grandparent;
  }
  return item;
}

bool UnionFind::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) return false;
  if (set_size_[static_cast<size_t>(ra)] < set_size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  set_size_[static_cast<size_t>(ra)] += set_size_[static_cast<size_t>(rb)];
  --num_sets_;
  return true;
}

Result<Clustering> ClusterFromPairs(int64_t num_items,
                                    std::span<const RecordPair> match_pairs) {
  if (num_items <= 0) {
    return Status::InvalidArgument("ClusterFromPairs: num_items must be positive");
  }
  UnionFind uf(num_items);
  for (const RecordPair& pair : match_pairs) {
    if (pair.left < 0 || pair.right < 0 || pair.left >= num_items ||
        pair.right >= num_items) {
      return Status::InvalidArgument("ClusterFromPairs: pair index out of range");
    }
    uf.Union(pair.left, pair.right);
  }

  Clustering clustering;
  clustering.cluster_of.assign(static_cast<size_t>(num_items), -1);
  std::unordered_map<int64_t, int64_t> root_to_cluster;
  root_to_cluster.reserve(static_cast<size_t>(uf.num_sets()));
  for (int64_t i = 0; i < num_items; ++i) {
    const int64_t root = uf.Find(i);
    auto [it, inserted] = root_to_cluster.emplace(
        root, static_cast<int64_t>(clustering.clusters.size()));
    if (inserted) clustering.clusters.emplace_back();
    clustering.cluster_of[static_cast<size_t>(i)] = it->second;
    clustering.clusters[static_cast<size_t>(it->second)].push_back(i);
  }
  return clustering;
}

namespace {

/// Sum over clusters of C(|c|, 2).
int64_t WithinClusterPairs(const Clustering& clustering) {
  int64_t pairs = 0;
  for (const auto& members : clustering.clusters) {
    const int64_t n = static_cast<int64_t>(members.size());
    pairs += n * (n - 1) / 2;
  }
  return pairs;
}

}  // namespace

Result<Measures> PairwiseMeasuresFromClusterings(const Clustering& truth,
                                                 const Clustering& predicted,
                                                 double alpha) {
  if (truth.num_items() != predicted.num_items() || truth.num_items() == 0) {
    return Status::InvalidArgument(
        "PairwiseMeasuresFromClusterings: item-count mismatch or empty");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument(
        "PairwiseMeasuresFromClusterings: alpha must be in [0, 1]");
  }

  // True positives = pairs co-clustered in both = sum over (truth cluster,
  // predicted cluster) intersection sizes s of C(s, 2). Count intersections
  // by grouping items on the (truth id, predicted id) key.
  std::unordered_map<int64_t, int64_t> intersection_sizes;
  intersection_sizes.reserve(static_cast<size_t>(truth.num_items()));
  const int64_t predicted_clusters = predicted.num_clusters();
  for (int64_t i = 0; i < truth.num_items(); ++i) {
    const int64_t key =
        truth.cluster_of[static_cast<size_t>(i)] * predicted_clusters +
        predicted.cluster_of[static_cast<size_t>(i)];
    ++intersection_sizes[key];
  }
  int64_t tp = 0;
  for (const auto& [key, s] : intersection_sizes) {
    (void)key;
    tp += s * (s - 1) / 2;
  }

  ConfusionCounts counts;
  counts.true_positives = tp;
  counts.false_positives = WithinClusterPairs(predicted) - tp;
  counts.false_negatives = WithinClusterPairs(truth) - tp;
  const int64_t n = truth.num_items();
  counts.true_negatives = n * (n - 1) / 2 - counts.true_positives -
                          counts.false_positives - counts.false_negatives;
  return ComputeMeasures(counts, alpha);
}

Result<ClusterAgreement> ExactClusterAgreement(const Clustering& truth,
                                               const Clustering& predicted) {
  if (truth.num_items() != predicted.num_items() || truth.num_items() == 0) {
    return Status::InvalidArgument(
        "ExactClusterAgreement: item-count mismatch or empty");
  }
  // A predicted cluster is exactly right when all members share one truth
  // cluster AND that truth cluster has the same size.
  auto count_exact = [](const Clustering& from, const Clustering& against) {
    int64_t exact = 0;
    for (const auto& members : from.clusters) {
      const int64_t target =
          against.cluster_of[static_cast<size_t>(members.front())];
      bool all_same = true;
      for (int64_t item : members) {
        if (against.cluster_of[static_cast<size_t>(item)] != target) {
          all_same = false;
          break;
        }
      }
      if (all_same &&
          against.clusters[static_cast<size_t>(target)].size() == members.size()) {
        ++exact;
      }
    }
    return exact;
  };

  ClusterAgreement agreement;
  agreement.predicted_exact =
      static_cast<double>(count_exact(predicted, truth)) /
      static_cast<double>(predicted.num_clusters());
  agreement.truth_recovered = static_cast<double>(count_exact(truth, predicted)) /
                              static_cast<double>(truth.num_clusters());
  return agreement;
}

}  // namespace er
}  // namespace oasis
