#include "er/edit_distance.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace oasis {
namespace er {

int64_t LevenshteinDistance(const std::string& a, const std::string& b) {
  // Keep the shorter string in the inner dimension for O(min) memory.
  const std::string& rows = a.size() >= b.size() ? a : b;
  const std::string& cols = a.size() >= b.size() ? b : a;
  const size_t m = cols.size();
  if (m == 0) return static_cast<int64_t>(rows.size());

  std::vector<int64_t> prev(m + 1);
  std::vector<int64_t> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int64_t>(j);

  for (size_t i = 1; i <= rows.size(); ++i) {
    curr[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int64_t substitute =
          prev[j - 1] + (rows[i - 1] == cols[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LevenshteinSimilarity(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

int64_t DamerauLevenshteinDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int64_t>(m);
  if (m == 0) return static_cast<int64_t>(n);

  // Optimal string alignment needs three rows (i-2, i-1, i).
  std::vector<int64_t> two_back(m + 1);
  std::vector<int64_t> prev(m + 1);
  std::vector<int64_t> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int64_t>(j);

  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int64_t substitute = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        curr[j] = std::min(curr[j], two_back[j - 2] + 1);  // Transposition.
      }
    }
    std::swap(two_back, prev);
    std::swap(prev, curr);
  }
  return prev[m];
}

double JaroSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const int64_t window =
      std::max<int64_t>(static_cast<int64_t>(std::max(a.size(), b.size())) / 2 - 1,
                        0);
  std::vector<uint8_t> a_matched(a.size(), 0);
  std::vector<uint8_t> b_matched(b.size(), 0);

  int64_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo =
        static_cast<size_t>(std::max<int64_t>(0, static_cast<int64_t>(i) - window));
    const size_t hi = std::min(b.size(), i + static_cast<size_t>(window) + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  int64_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) + m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(const std::string& a, const std::string& b,
                             double prefix_scale) {
  OASIS_DCHECK(prefix_scale >= 0.0 && prefix_scale <= 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace er
}  // namespace oasis
