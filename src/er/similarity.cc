#include "er/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "er/normalize.h"
#include "er/tokenize.h"

namespace oasis {
namespace er {

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0;
  size_t j = 0;
  size_t intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double TrigramJaccard(const std::string& a, const std::string& b) {
  const std::vector<std::string> grams_a = NgramSet(NormalizeString(a), 3);
  const std::vector<std::string> grams_b = NgramSet(NormalizeString(b), 3);
  return JaccardSimilarity(grams_a, grams_b);
}

double NumericSimilarity(double a, double b) {
  const double magnitude = std::abs(a) + std::abs(b);
  if (magnitude <= 0.0) return 1.0;
  const double diff = std::abs(a - b) / magnitude;
  return std::max(0.0, 1.0 - diff);
}

Result<SimilarityFeaturizer> SimilarityFeaturizer::Fit(const Database& left,
                                                       const Database& right) {
  OASIS_RETURN_NOT_OK(left.Validate());
  OASIS_RETURN_NOT_OK(right.Validate());
  if (left.schema.num_fields() != right.schema.num_fields()) {
    return Status::InvalidArgument("SimilarityFeaturizer: schema arity mismatch");
  }
  for (size_t f = 0; f < left.schema.num_fields(); ++f) {
    if (left.schema.field(f).kind != right.schema.field(f).kind) {
      return Status::InvalidArgument("SimilarityFeaturizer: field kind mismatch");
    }
  }

  SimilarityFeaturizer featurizer;
  featurizer.schema_ = left.schema;
  featurizer.vectorizers_.resize(left.schema.num_fields());
  for (size_t f = 0; f < left.schema.num_fields(); ++f) {
    if (left.schema.field(f).kind != FieldKind::kLongText) continue;
    std::vector<std::vector<std::string>> corpus;
    corpus.reserve(left.records.size() + right.records.size());
    for (const Database* db : {&left, &right}) {
      for (const Record& rec : db->records) {
        const FieldValue& value = rec.values[f];
        if (value.missing) continue;
        corpus.push_back(WordTokens(NormalizeString(value.text)));
      }
    }
    if (corpus.empty()) {
      return Status::InvalidArgument(
          "SimilarityFeaturizer: long-text field '" + left.schema.field(f).name +
          "' has no non-missing values to fit tf-idf on");
    }
    OASIS_RETURN_NOT_OK(featurizer.vectorizers_[f].Fit(corpus));
  }
  return featurizer;
}

std::vector<double> SimilarityFeaturizer::Features(const Record& left,
                                                   const Record& right) const {
  OASIS_DCHECK(left.values.size() == schema_.num_fields());
  OASIS_DCHECK(right.values.size() == schema_.num_fields());
  std::vector<double> features(schema_.num_fields(), 0.5);
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    const FieldValue& a = left.values[f];
    const FieldValue& b = right.values[f];
    if (a.missing || b.missing) continue;  // Neutral 0.5 for missing data.
    switch (schema_.field(f).kind) {
      case FieldKind::kShortText:
        features[f] = TrigramJaccard(a.text, b.text);
        break;
      case FieldKind::kLongText: {
        const SparseVector va =
            vectorizers_[f].Transform(WordTokens(NormalizeString(a.text)));
        const SparseVector vb =
            vectorizers_[f].Transform(WordTokens(NormalizeString(b.text)));
        features[f] = CosineSimilarity(va, vb);
        break;
      }
      case FieldKind::kNumeric:
        features[f] = NumericSimilarity(a.number, b.number);
        break;
    }
  }
  return features;
}

}  // namespace er
}  // namespace oasis
