#include "er/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace oasis {
namespace er {

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ids[i] == b.ids[j]) {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    } else if (a.ids[i] < b.ids[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

Status TfIdfVectorizer::Fit(const std::vector<std::vector<std::string>>& documents) {
  if (documents.empty()) {
    return Status::InvalidArgument("TfIdfVectorizer: empty corpus");
  }
  vocabulary_.clear();
  std::vector<int64_t> doc_freq;
  for (const auto& doc : documents) {
    // Count each term once per document for df.
    std::vector<std::string> unique = doc;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (const auto& term : unique) {
      auto [it, inserted] =
          vocabulary_.emplace(term, static_cast<int32_t>(vocabulary_.size()));
      if (inserted) {
        doc_freq.push_back(1);
      } else {
        ++doc_freq[static_cast<size_t>(it->second)];
      }
    }
  }
  const double n = static_cast<double>(documents.size());
  idf_.resize(doc_freq.size());
  for (size_t t = 0; t < doc_freq.size(); ++t) {
    idf_[t] = std::log((1.0 + n) / (1.0 + static_cast<double>(doc_freq[t]))) + 1.0;
  }
  fitted_ = true;
  return Status::OK();
}

SparseVector TfIdfVectorizer::Transform(const std::vector<std::string>& tokens) const {
  SparseVector out;
  if (!fitted_) return out;
  // Term frequencies restricted to the vocabulary, in term-id order.
  std::map<int32_t, double> tf;
  for (const auto& token : tokens) {
    auto it = vocabulary_.find(token);
    if (it == vocabulary_.end()) continue;
    tf[it->second] += 1.0;
  }
  if (tf.empty()) return out;
  out.ids.reserve(tf.size());
  out.weights.reserve(tf.size());
  double norm_sq = 0.0;
  for (const auto& [id, count] : tf) {
    const double w = count * idf_[static_cast<size_t>(id)];
    out.ids.push_back(id);
    out.weights.push_back(w);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (double& w : out.weights) w *= inv;
  }
  return out;
}

double TfIdfVectorizer::IdfOf(const std::string& term) const {
  auto it = vocabulary_.find(term);
  if (it == vocabulary_.end()) return 0.0;
  return idf_[static_cast<size_t>(it->second)];
}

}  // namespace er
}  // namespace oasis
