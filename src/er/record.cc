#include "er/record.h"

#include <utility>

namespace oasis {
namespace er {

Schema::Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Database::Validate() const {
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].values.size() != schema.num_fields()) {
      return Status::InvalidArgument("Database: record " + std::to_string(i) +
                                     " arity does not match schema");
    }
  }
  return Status::OK();
}

}  // namespace er
}  // namespace oasis
