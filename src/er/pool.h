#ifndef OASIS_ER_POOL_H_
#define OASIS_ER_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace oasis {
namespace er {

/// One candidate record pair: indices into the left and right databases. For
/// deduplication pools both indices refer to the same database and
/// left < right.
struct RecordPair {
  int32_t left = 0;
  int32_t right = 0;

  bool operator==(const RecordPair& other) const {
    return left == other.left && right == other.right;
  }
};

/// A pool of candidate record pairs with ground-truth match labels — the
/// sampling frame P of Definition 4. Ground truth is carried here (the pool
/// is handed to oracles); estimators only ever see it through an Oracle.
class PairPool {
 public:
  PairPool() = default;

  /// Appends a pair with its ground-truth label.
  void Add(RecordPair pair, bool is_match);

  int64_t size() const { return static_cast<int64_t>(pairs_.size()); }
  const RecordPair& pair(int64_t i) const { return pairs_[static_cast<size_t>(i)]; }
  const std::vector<RecordPair>& pairs() const { return pairs_; }

  bool is_match(int64_t i) const { return truth_[static_cast<size_t>(i)] != 0; }
  const std::vector<uint8_t>& truth() const { return truth_; }

  int64_t num_matches() const { return num_matches_; }

  /// Non-matches per match; +inf-like large value when there are no matches.
  double ImbalanceRatio() const;

 private:
  std::vector<RecordPair> pairs_;
  std::vector<uint8_t> truth_;
  int64_t num_matches_ = 0;
};

}  // namespace er
}  // namespace oasis

#endif  // OASIS_ER_POOL_H_
