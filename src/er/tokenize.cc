#include "er/tokenize.h"

#include <algorithm>

namespace oasis {
namespace er {

std::vector<std::string> WordTokens(const std::string& text) {
  std::vector<std::string> tokens;
  size_t start = std::string::npos;
  for (size_t i = 0; i <= text.size(); ++i) {
    const bool is_space = (i == text.size()) || text[i] == ' ' || text[i] == '\t' ||
                          text[i] == '\n';
    if (!is_space && start == std::string::npos) {
      start = i;
    } else if (is_space && start != std::string::npos) {
      tokens.push_back(text.substr(start, i - start));
      start = std::string::npos;
    }
  }
  return tokens;
}

std::vector<std::string> CharacterNgrams(const std::string& text, size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  if (text.empty()) return grams;
  std::string padded;
  padded.reserve(text.size() + 2 * (n - 1));
  padded.append(n - 1, '#');
  padded += text;
  padded.append(n - 1, '#');
  if (padded.size() < n) return grams;
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

std::vector<std::string> NgramSet(const std::string& text, size_t n) {
  std::vector<std::string> grams = CharacterNgrams(text, n);
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

}  // namespace er
}  // namespace oasis
