#include "oracle/noisy_oracle.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace oasis {

NoisyOracle::NoisyOracle(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  deterministic_ = true;
  for (double p : probabilities_) {
    if (p != 0.0 && p != 1.0) {
      deterministic_ = false;
      break;
    }
  }
}

Result<NoisyOracle> NoisyOracle::FromProbabilities(std::vector<double> probabilities) {
  if (probabilities.empty()) {
    return Status::InvalidArgument("NoisyOracle: empty probability vector");
  }
  for (double p : probabilities) {
    if (std::isnan(p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("NoisyOracle: probability outside [0, 1]");
    }
  }
  return NoisyOracle(std::move(probabilities));
}

Result<NoisyOracle> NoisyOracle::FromTruthWithFlipNoise(
    const std::vector<uint8_t>& truth, double flip_rate) {
  if (truth.empty()) {
    return Status::InvalidArgument("NoisyOracle: empty truth vector");
  }
  if (std::isnan(flip_rate) || flip_rate < 0.0 || flip_rate >= 0.5) {
    return Status::InvalidArgument("NoisyOracle: flip_rate must be in [0, 0.5)");
  }
  std::vector<double> probabilities(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    probabilities[i] = truth[i] != 0 ? 1.0 - flip_rate : flip_rate;
  }
  return NoisyOracle(std::move(probabilities));
}

bool NoisyOracle::Label(int64_t item, Rng& rng) const {
  OASIS_DCHECK(item >= 0 && item < num_items());
  return rng.NextBernoulli(probabilities_[static_cast<size_t>(item)]);
}

void NoisyOracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                             std::span<uint8_t> out) const {
  OASIS_DCHECK(items.size() == out.size());
  const double* probabilities = probabilities_.data();
  for (size_t i = 0; i < items.size(); ++i) {
    OASIS_DCHECK(items[i] >= 0 && items[i] < num_items());
    out[i] =
        rng.NextBernoulli(probabilities[static_cast<size_t>(items[i])]) ? 1 : 0;
  }
}

double NoisyOracle::TrueProbability(int64_t item) const {
  OASIS_DCHECK(item >= 0 && item < num_items());
  return probabilities_[static_cast<size_t>(item)];
}

}  // namespace oasis
