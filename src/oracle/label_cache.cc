#include "oracle/label_cache.h"

#include "common/logging.h"

namespace oasis {

LabelCache::LabelCache(Oracle* oracle) : oracle_(oracle) {
  OASIS_CHECK(oracle != nullptr);
  cache_.assign(static_cast<size_t>(oracle->num_items()), 0);
}

bool LabelCache::Query(int64_t item, Rng& rng) {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  ++total_queries_;
  uint8_t& slot = cache_[static_cast<size_t>(item)];
  if (oracle_->deterministic()) {
    if (slot != 0) {
      return slot == 2;  // Free replay of the cached label.
    }
    const bool label = oracle_->Label(item, rng);
    slot = label ? 2 : 1;
    ++labels_consumed_;
    ++distinct_items_;
    return label;
  }
  // Noisy oracle: every draw costs budget; remember first touch for
  // distinct-item accounting.
  if (slot == 0) {
    slot = 3;
    ++distinct_items_;
  }
  ++labels_consumed_;
  return oracle_->Label(item, rng);
}

bool LabelCache::IsLabelled(int64_t item) const {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  return cache_[static_cast<size_t>(item)] != 0;
}

}  // namespace oasis
