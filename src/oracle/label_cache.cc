#include "oracle/label_cache.h"

#include "common/logging.h"

namespace oasis {

LabelCache::LabelCache(const Oracle* oracle) : oracle_(oracle) {
  OASIS_CHECK(oracle != nullptr);
  cache_.assign(static_cast<size_t>(oracle->num_items()), 0);
}

bool LabelCache::Query(int64_t item, Rng& rng) {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  ++total_queries_;
  uint8_t& slot = cache_[static_cast<size_t>(item)];
  if (oracle_->deterministic()) {
    if (slot != 0) {
      return slot == 2;  // Free replay of the cached label.
    }
    const bool label = oracle_->Label(item, rng);
    slot = label ? 2 : 1;
    ++labels_consumed_;
    ++distinct_items_;
    return label;
  }
  // Noisy oracle: every draw costs budget; remember first touch for
  // distinct-item accounting.
  if (slot == 0) {
    slot = 3;
    ++distinct_items_;
  }
  ++labels_consumed_;
  return oracle_->Label(item, rng);
}

Status LabelCache::QueryBatch(std::span<const int64_t> items, Rng& rng,
                              std::span<uint8_t> out_labels) {
  if (items.size() != out_labels.size()) {
    return Status::InvalidArgument(
        "LabelCache::QueryBatch: items/out_labels length mismatch");
  }
  total_queries_ += static_cast<int64_t>(items.size());
  if (items.empty()) return Status::OK();

  if (!oracle_->deterministic()) {
    // Noisy oracle: every query is a fresh charged draw; the batched oracle
    // call consumes the RNG in item order, i.e. on the identical stream the
    // sequential Query loop would use (the bookkeeping between draws never
    // touches the RNG).
    for (int64_t item : items) {
      OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
      uint8_t& slot = cache_[static_cast<size_t>(item)];
      if (slot == 0) {
        slot = 3;
        ++distinct_items_;
      }
    }
    labels_consumed_ += static_cast<int64_t>(items.size());
    oracle_->LabelBatch(items, rng, out_labels);
    return Status::OK();
  }

  // Deterministic oracle. Pass 1: collect the batch's cache misses in
  // first-occurrence order (duplicates after the first occurrence behave as
  // free replays, exactly as in the sequential loop), marking them pending so
  // a duplicate is not queried twice.
  miss_items_.clear();
  for (int64_t item : items) {
    OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
    uint8_t& slot = cache_[static_cast<size_t>(item)];
    if (slot == 0) {
      slot = 4;  // Pending: resolved by the single round-trip below.
      miss_items_.push_back(item);
    }
  }
  // One oracle round-trip for every miss (deterministic oracles ignore the
  // RNG, so batching does not perturb the seeded stream).
  if (!miss_items_.empty()) {
    miss_labels_.resize(miss_items_.size());
    oracle_->LabelBatch(miss_items_, rng, miss_labels_);
    for (size_t i = 0; i < miss_items_.size(); ++i) {
      cache_[static_cast<size_t>(miss_items_[i])] = miss_labels_[i] ? 2 : 1;
    }
    labels_consumed_ += static_cast<int64_t>(miss_items_.size());
    distinct_items_ += static_cast<int64_t>(miss_items_.size());
  }
  // Pass 2: answer everything from the (now fully populated) cache.
  for (size_t i = 0; i < items.size(); ++i) {
    out_labels[i] = cache_[static_cast<size_t>(items[i])] == 2 ? 1 : 0;
  }
  return Status::OK();
}

bool LabelCache::IsLabelled(int64_t item) const {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  return cache_[static_cast<size_t>(item)] != 0;
}

}  // namespace oasis
