#include "oracle/label_cache.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {

/// Replays answered from the cache without a charged oracle label.
telemetry::Counter& CacheHits() {
  static telemetry::Counter& counter = telemetry::DefaultRegistry().AddCounter(
      "oasis_labelcache_hits_total",
      "Label queries answered from the cache (free replays).");
  return counter;
}

/// Charged oracle labels — the budget the paper's x axes count.
telemetry::Counter& CacheMisses() {
  static telemetry::Counter& counter = telemetry::DefaultRegistry().AddCounter(
      "oasis_labelcache_misses_total",
      "Charged oracle labels (cache misses / noisy draws).");
  return counter;
}

/// Pending markers rolled back to "never queried" by a failed batch.
telemetry::Counter& PendingRollbacks() {
  static telemetry::Counter& counter = telemetry::DefaultRegistry().AddCounter(
      "oasis_labelcache_pending_rollbacks_total",
      "Pending cache markers rolled back by a failed fallible batch.");
  return counter;
}

}  // namespace

LabelCache::LabelCache(const Oracle* oracle) : oracle_(oracle) {
  OASIS_CHECK(oracle != nullptr);
  cache_.assign(static_cast<size_t>(oracle->num_items()), 0);
}

bool LabelCache::Query(int64_t item, Rng& rng) {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  ++total_queries_;
  uint8_t& slot = cache_[static_cast<size_t>(item)];
  if (oracle_->deterministic()) {
    if (slot != 0) {
      if (OASIS_TELEMETRY_ON) CacheHits().Increment();
      return slot == 2;  // Free replay of the cached label.
    }
    const bool label = oracle_->Label(item, rng);
    slot = label ? 2 : 1;
    ++labels_consumed_;
    ++distinct_items_;
    if (OASIS_TELEMETRY_ON) CacheMisses().Increment();
    return label;
  }
  // Noisy oracle: every draw costs budget; remember first touch for
  // distinct-item accounting.
  if (slot == 0) {
    slot = 3;
    ++distinct_items_;
  }
  ++labels_consumed_;
  if (OASIS_TELEMETRY_ON) CacheMisses().Increment();
  return oracle_->Label(item, rng);
}

Result<bool> LabelCache::TryQuery(int64_t item, Rng& rng) {
  if (!oracle_->fallible()) {
    return Query(item, rng);  // Reliable stack: the zero-overhead hot path.
  }
  const int64_t batch[1] = {item};
  uint8_t label = 0;
  OASIS_RETURN_NOT_OK(QueryBatch(std::span<const int64_t>(batch, 1), rng,
                                 std::span<uint8_t>(&label, 1)));
  return label != 0;
}

Status LabelCache::QueryBatch(std::span<const int64_t> items, Rng& rng,
                              std::span<uint8_t> out_labels) {
  if (items.size() != out_labels.size()) {
    return Status::InvalidArgument(
        "LabelCache::QueryBatch: items/out_labels length mismatch");
  }
  total_queries_ += static_cast<int64_t>(items.size());
  if (items.empty()) return Status::OK();
  if (oracle_->fallible()) return QueryBatchFallible(items, rng, out_labels);

  if (!oracle_->deterministic()) {
    // Noisy oracle: every query is a fresh charged draw; the batched oracle
    // call consumes the RNG in item order, i.e. on the identical stream the
    // sequential Query loop would use (the bookkeeping between draws never
    // touches the RNG).
    for (int64_t item : items) {
      OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
      uint8_t& slot = cache_[static_cast<size_t>(item)];
      if (slot == 0) {
        slot = 3;
        ++distinct_items_;
      }
    }
    labels_consumed_ += static_cast<int64_t>(items.size());
    if (OASIS_TELEMETRY_ON) CacheMisses().Add(static_cast<int64_t>(items.size()));
    oracle_->LabelBatch(items, rng, out_labels);
    return Status::OK();
  }

  // Deterministic oracle. Pass 1: collect the batch's cache misses in
  // first-occurrence order (duplicates after the first occurrence behave as
  // free replays, exactly as in the sequential loop), marking them pending so
  // a duplicate is not queried twice.
  miss_items_.clear();
  for (int64_t item : items) {
    OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
    uint8_t& slot = cache_[static_cast<size_t>(item)];
    if (slot == 0) {
      slot = 4;  // Pending: resolved by the single round-trip below.
      miss_items_.push_back(item);
    }
  }
  // One oracle round-trip for every miss (deterministic oracles ignore the
  // RNG, so batching does not perturb the seeded stream).
  if (!miss_items_.empty()) {
    miss_labels_.resize(miss_items_.size());
    oracle_->LabelBatch(miss_items_, rng, miss_labels_);
    for (size_t i = 0; i < miss_items_.size(); ++i) {
      cache_[static_cast<size_t>(miss_items_[i])] = miss_labels_[i] ? 2 : 1;
    }
    labels_consumed_ += static_cast<int64_t>(miss_items_.size());
    distinct_items_ += static_cast<int64_t>(miss_items_.size());
  }
  if (OASIS_TELEMETRY_ON) {
    CacheMisses().Add(static_cast<int64_t>(miss_items_.size()));
    CacheHits().Add(static_cast<int64_t>(items.size() - miss_items_.size()));
  }
  // Pass 2: answer everything from the (now fully populated) cache.
  for (size_t i = 0; i < items.size(); ++i) {
    out_labels[i] = cache_[static_cast<size_t>(items[i])] == 2 ? 1 : 0;
  }
  return Status::OK();
}

Status LabelCache::QueryBatchFallible(std::span<const int64_t> items, Rng& rng,
                                      std::span<uint8_t> out_labels) {
  if (!oracle_->deterministic()) {
    // Noisy + fallible: every RESOLVED draw is charged (footnote-5 noisy
    // regime); an unresolved position is re-requested — a fresh draw, which
    // is exactly what a sequential re-Query would have produced — and
    // charged only when its label arrives. First-touch accounting happens at
    // first resolution, so a batch that fails outright changes no counter
    // except total_queries_.
    pending_positions_.resize(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      OASIS_DCHECK(items[i] >= 0 && items[i] < oracle_->num_items());
      pending_positions_[i] = i;
    }
    while (!pending_positions_.empty()) {
      miss_items_.clear();
      for (size_t pos : pending_positions_) miss_items_.push_back(items[pos]);
      miss_labels_.assign(miss_items_.size(), 0);
      miss_resolved_.assign(miss_items_.size(), 0);
      const Status status =
          oracle_->TryLabelBatch(miss_items_, rng, miss_labels_, miss_resolved_);
      size_t kept = 0;
      int64_t newly = 0;
      for (size_t j = 0; j < pending_positions_.size(); ++j) {
        const size_t pos = pending_positions_[j];
        if (miss_resolved_[j] != 0) {
          out_labels[pos] = miss_labels_[j] ? 1 : 0;
          uint8_t& slot = cache_[static_cast<size_t>(items[pos])];
          if (slot == 0) {
            slot = 3;
            ++distinct_items_;
          }
          ++labels_consumed_;
          if (OASIS_TELEMETRY_ON) CacheMisses().Increment();
          ++newly;
        } else {
          pending_positions_[kept++] = pos;
        }
      }
      pending_positions_.resize(kept);
      OASIS_RETURN_NOT_OK(status);
      if (newly == 0 && !pending_positions_.empty()) {
        return Status::Unavailable(
            "LabelCache::QueryBatch: oracle made no progress on partial batch");
      }
    }
    return Status::OK();
  }

  // Deterministic + fallible. Same two-pass structure as the reliable path,
  // but the miss round-trip becomes a re-request loop over whatever is still
  // missing. Each miss is charged exactly once, when its label resolves.
  miss_items_.clear();
  for (int64_t item : items) {
    OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
    uint8_t& slot = cache_[static_cast<size_t>(item)];
    if (slot == 0) {
      slot = 4;  // Pending: resolved (or rolled back) below.
      miss_items_.push_back(item);
    }
  }
  if (OASIS_TELEMETRY_ON) {
    CacheHits().Add(static_cast<int64_t>(items.size() - miss_items_.size()));
  }
  while (!miss_items_.empty()) {
    miss_labels_.assign(miss_items_.size(), 0);
    miss_resolved_.assign(miss_items_.size(), 0);
    const Status status =
        oracle_->TryLabelBatch(miss_items_, rng, miss_labels_, miss_resolved_);
    size_t kept = 0;
    int64_t newly = 0;
    for (size_t i = 0; i < miss_items_.size(); ++i) {
      if (miss_resolved_[i] != 0) {
        cache_[static_cast<size_t>(miss_items_[i])] = miss_labels_[i] ? 2 : 1;
        ++newly;
      } else {
        miss_items_[kept++] = miss_items_[i];
      }
    }
    miss_items_.resize(kept);
    labels_consumed_ += newly;
    distinct_items_ += newly;
    if (OASIS_TELEMETRY_ON) CacheMisses().Add(newly);
    if (!status.ok() || (newly == 0 && !miss_items_.empty())) {
      // Roll the pending markers back to "never queried" so a later call
      // re-attempts (and only then charges) them. Labels that DID resolve
      // stay cached and charged — they were delivered and paid for.
      if (OASIS_TELEMETRY_ON) {
        PendingRollbacks().Add(static_cast<int64_t>(miss_items_.size()));
      }
      for (int64_t item : miss_items_) cache_[static_cast<size_t>(item)] = 0;
      if (!status.ok()) return status;
      return Status::Unavailable(
          "LabelCache::QueryBatch: oracle made no progress on partial batch");
    }
  }
  // Everything resolved: answer the whole batch from the cache.
  for (size_t i = 0; i < items.size(); ++i) {
    out_labels[i] = cache_[static_cast<size_t>(items[i])] == 2 ? 1 : 0;
  }
  return Status::OK();
}

bool LabelCache::IsLabelled(int64_t item) const {
  OASIS_DCHECK(item >= 0 && item < oracle_->num_items());
  return cache_[static_cast<size_t>(item)] != 0;
}

}  // namespace oasis
