#include "oracle/retry_policy.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/remote_oracle.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {

/// Cap on each breaker's transition log: the earliest transitions — the ones
/// that explain how the breaker first tripped — are kept, later thrash is
/// only counted by the registry.
constexpr size_t kMaxBreakerTransitions = 4096;

/// Registry-side mirrors of the retry counters, shared by every instance.
struct RetryMetrics {
  telemetry::Counter& attempts;
  telemetry::Counter& retries;
  telemetry::Counter& give_ups;
  telemetry::Counter& fast_fails;
  telemetry::Counter& backoff_ns;
};

RetryMetrics& Metrics() {
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  static RetryMetrics metrics{
      registry.AddCounter("oasis_oracle_attempts_total",
                          "Inner TryLabelBatch attempts issued by the retry "
                          "layer (first tries and retries)."),
      registry.AddCounter("oasis_oracle_retries_total",
                          "Attempts beyond each call's first."),
      registry.AddCounter("oasis_oracle_give_ups_total",
                          "Retry calls that exhausted the policy or hit the "
                          "overall deadline."),
      registry.AddCounter("oasis_oracle_breaker_fast_fails_total",
                          "Calls rejected immediately by an open circuit "
                          "breaker."),
      registry.AddCounter("oasis_oracle_backoff_ns_total",
                          "Simulated nanoseconds spent in backoff waits."),
  };
  return metrics;
}

}  // namespace

const RemoteOracle* FindRemoteOracle(const Oracle* oracle) {
  while (oracle != nullptr) {
    if (const auto* remote = dynamic_cast<const RemoteOracle*>(oracle)) {
      return remote;
    }
    if (const auto* retrying = dynamic_cast<const RetryingOracle*>(oracle)) {
      oracle = &retrying->inner();
      continue;
    }
    if (const auto* fault =
            dynamic_cast<const FaultInjectingOracle*>(oracle)) {
      oracle = &fault->inner();
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

CircuitBreaker::CircuitBreaker(int failure_threshold, int64_t cooldown_calls)
    : failure_threshold_(failure_threshold),
      cooldown_calls_(std::max<int64_t>(1, cooldown_calls)) {}

bool CircuitBreaker::Admit(int64_t now_ns) {
  if (failure_threshold_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // One probe at a time; further calls keep failing fast until the
      // probe's outcome closes or re-opens the breaker.
      return false;
    case State::kOpen:
      if (rejected_since_open_ >= cooldown_calls_) {
        TransitionTo(State::kHalfOpen, now_ns);
        return true;
      }
      ++rejected_since_open_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(int64_t now_ns) {
  if (failure_threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TransitionTo(State::kClosed, now_ns);
  consecutive_failures_ = 0;
  rejected_since_open_ = 0;
}

void CircuitBreaker::RecordFailure(int64_t now_ns) {
  if (failure_threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen || consecutive_failures_ >= failure_threshold_) {
    TransitionTo(State::kOpen, now_ns);
    rejected_since_open_ = 0;
  }
}

void CircuitBreaker::TransitionTo(State next, int64_t now_ns) {
  if (state_ == next) return;
  if (transitions_.size() < kMaxBreakerTransitions) {
    transitions_.push_back(Transition{state_, next, now_ns});
  }
  state_ = next;
  if (OASIS_TELEMETRY_ON) {
    // One labelled child per destination state: transition rates by edge.
    static telemetry::Counter& to_closed =
        telemetry::DefaultRegistry().AddCounter(
            "oasis_oracle_breaker_transitions_total",
            "Circuit breaker state transitions, by destination state.",
            {{"to", "closed"}});
    static telemetry::Counter& to_open = telemetry::DefaultRegistry().AddCounter(
        "oasis_oracle_breaker_transitions_total",
        "Circuit breaker state transitions, by destination state.",
        {{"to", "open"}});
    static telemetry::Counter& to_half_open =
        telemetry::DefaultRegistry().AddCounter(
            "oasis_oracle_breaker_transitions_total",
            "Circuit breaker state transitions, by destination state.",
            {{"to", "half_open"}});
    static telemetry::Gauge& state_gauge = telemetry::DefaultRegistry().AddGauge(
        "oasis_oracle_breaker_state",
        "Most recent breaker state (0 closed, 1 open, 2 half-open; last "
        "writer wins across breakers).");
    switch (next) {
      case State::kClosed:
        to_closed.Increment();
        state_gauge.Set(0.0);
        break;
      case State::kOpen:
        to_open.Increment();
        state_gauge.Set(1.0);
        break;
      case State::kHalfOpen:
        to_half_open.Increment();
        state_gauge.Set(2.0);
        break;
    }
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::vector<CircuitBreaker::Transition> CircuitBreaker::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

RetryingOracle::RetryingOracle(const Oracle* inner, const RetryPolicy& policy)
    : inner_(inner),
      policy_(policy),
      clock_(FindRemoteOracle(inner)),
      breaker_(policy.breaker_failure_threshold, policy.breaker_cooldown_calls) {
  OASIS_CHECK(inner != nullptr);
  OASIS_CHECK(policy.max_attempts >= 1);
  OASIS_CHECK(policy.initial_backoff_seconds >= 0.0);
  OASIS_CHECK(policy.backoff_multiplier >= 1.0);
  OASIS_CHECK(policy.max_backoff_seconds >= 0.0);
  OASIS_CHECK(policy.jitter_fraction >= 0.0 && policy.jitter_fraction < 1.0);
  OASIS_CHECK(policy.per_attempt_timeout_seconds >= 0.0);
  OASIS_CHECK(policy.overall_deadline_seconds >= 0.0);
}

bool RetryingOracle::Label(int64_t item, Rng& rng) const {
  return inner_->Label(item, rng);
}

void RetryingOracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                                std::span<uint8_t> out) const {
  inner_->LabelBatch(items, rng, out);
}

int64_t RetryingOracle::BackoffNs(int retry_number) const {
  double seconds = policy_.initial_backoff_seconds;
  for (int i = 1; i < retry_number; ++i) seconds *= policy_.backoff_multiplier;
  seconds = std::min(seconds, policy_.max_backoff_seconds);
  if (policy_.jitter_fraction > 0.0 && seconds > 0.0) {
    Rng jitter = Rng::Fork(policy_.jitter_seed,
                           backoff_draws_.fetch_add(1, std::memory_order_relaxed));
    seconds *= 1.0 + policy_.jitter_fraction * jitter.NextDouble();
  }
  return static_cast<int64_t>(std::llround(seconds * 1e9));
}

Status RetryingOracle::TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                                     std::span<uint8_t> out,
                                     std::span<uint8_t> resolved) const {
  OASIS_DCHECK(items.size() == out.size());
  OASIS_DCHECK(items.size() == resolved.size());
  if (!inner_->fallible()) {
    // No-op decorator over a reliable stack: nothing to retry, nothing to
    // account, and in particular zero overhead beyond this branch.
    inner_->LabelBatch(items, rng, out);
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 1;
    return Status::OK();
  }
  for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
  if (items.empty()) return Status::OK();
  // Breaker events are timestamped on the stack's simulated clock so the
  // transition log lines up with the latency model's timeline.
  const auto now_ns = [this]() -> int64_t {
    return clock_ != nullptr ? clock_->stats().simulated_latency_ns : 0;
  };
  if (!breaker_.Admit(now_ns())) {
    breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
    if (OASIS_TELEMETRY_ON) Metrics().fast_fails.Increment();
    return Status::Unavailable("RetryingOracle: circuit breaker open");
  }

  const int64_t per_attempt_timeout_ns = static_cast<int64_t>(
      std::llround(policy_.per_attempt_timeout_seconds * 1e9));
  const int64_t deadline_ns = static_cast<int64_t>(
      std::llround(policy_.overall_deadline_seconds * 1e9));
  int64_t spent_ns = 0;
  Status last_failure = Status::OK();
  // Positions of `items` still unresolved; scratch for subset re-requests.
  std::vector<size_t> pending;
  std::vector<int64_t> sub_items;
  std::vector<uint8_t> sub_out;
  std::vector<uint8_t> sub_resolved;

  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 1) retries_.fetch_add(1, std::memory_order_relaxed);
    if (OASIS_TELEMETRY_ON) {
      Metrics().attempts.Increment();
      if (attempt > 1) Metrics().retries.Increment();
    }
    const int64_t clock_before =
        clock_ != nullptr ? clock_->stats().simulated_latency_ns : 0;
    Status status;
    int64_t newly_resolved = 0;
    if (attempt == 1) {
      // First attempt writes straight into the caller's buffers.
      status = inner_->TryLabelBatch(items, rng, out, resolved);
      const int64_t attempt_ns =
          clock_ != nullptr ? clock_->stats().simulated_latency_ns - clock_before
                            : 0;
      spent_ns += attempt_ns;
      if (per_attempt_timeout_ns > 0 && attempt_ns > per_attempt_timeout_ns) {
        // The response arrived after the caller stopped waiting: discard its
        // labels (the wire time stays charged) and retry.
        for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
        status = Status::DeadlineExceeded("RetryingOracle: per-attempt timeout");
      } else {
        for (size_t i = 0; i < resolved.size(); ++i) {
          newly_resolved += resolved[i] != 0 ? 1 : 0;
        }
      }
    } else {
      // Retry: re-request ONLY the still-missing items.
      sub_items.clear();
      sub_items.reserve(pending.size());
      for (size_t p : pending) sub_items.push_back(items[p]);
      sub_out.assign(pending.size(), 0);
      sub_resolved.assign(pending.size(), 0);
      status = inner_->TryLabelBatch(sub_items, rng, sub_out, sub_resolved);
      const int64_t attempt_ns =
          clock_ != nullptr ? clock_->stats().simulated_latency_ns - clock_before
                            : 0;
      spent_ns += attempt_ns;
      if (per_attempt_timeout_ns > 0 && attempt_ns > per_attempt_timeout_ns) {
        status = Status::DeadlineExceeded("RetryingOracle: per-attempt timeout");
      } else {
        for (size_t j = 0; j < pending.size(); ++j) {
          if (sub_resolved[j] == 0) continue;
          out[pending[j]] = sub_out[j];
          resolved[pending[j]] = 1;
          ++newly_resolved;
        }
        items_recovered_.fetch_add(newly_resolved, std::memory_order_relaxed);
      }
    }

    pending.clear();
    for (size_t i = 0; i < items.size(); ++i) {
      if (resolved[i] == 0) pending.push_back(i);
    }
    if (status.ok() && pending.empty()) {
      breaker_.RecordSuccess(now_ns());
      return Status::OK();
    }
    // A partial-but-progressing OK response means the service is alive — it
    // resets the breaker; anything else counts as a consecutive failure.
    if (status.ok() && newly_resolved > 0) {
      breaker_.RecordSuccess(now_ns());
    } else {
      breaker_.RecordFailure(now_ns());
    }
    last_failure = status.ok()
                       ? Status::Unavailable(
                             "RetryingOracle: partial batch never completed")
                       : status;
    if (attempt == policy_.max_attempts) break;

    const int64_t wait_ns = BackoffNs(attempt);
    if (deadline_ns > 0 && spent_ns + wait_ns > deadline_ns) {
      give_ups_.fetch_add(1, std::memory_order_relaxed);
      if (OASIS_TELEMETRY_ON) Metrics().give_ups.Increment();
      return Status::DeadlineExceeded(
          "RetryingOracle: overall deadline exceeded after " +
          std::to_string(attempt) + " attempts (" +
          std::to_string(pending.size()) + " items unresolved)");
    }
    if (clock_ != nullptr) clock_->ChargeAuxiliaryLatencyNs(wait_ns);
    backoff_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    if (OASIS_TELEMETRY_ON) Metrics().backoff_ns.Add(wait_ns);
    spent_ns += wait_ns;
  }

  give_ups_.fetch_add(1, std::memory_order_relaxed);
  if (OASIS_TELEMETRY_ON) Metrics().give_ups.Increment();
  return Status(last_failure.code(),
                last_failure.message() + " [gave up after " +
                    std::to_string(policy_.max_attempts) + " attempts]");
}

double RetryingOracle::TrueProbability(int64_t item) const {
  return inner_->TrueProbability(item);
}

bool RetryingOracle::deterministic() const { return inner_->deterministic(); }

bool RetryingOracle::labelling_consumes_rng() const {
  return inner_->labelling_consumes_rng();
}

bool RetryingOracle::fallible() const { return inner_->fallible(); }

int64_t RetryingOracle::num_items() const { return inner_->num_items(); }

RetryStats RetryingOracle::stats() const {
  RetryStats stats;
  stats.attempts = attempts_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.give_ups = give_ups_.load(std::memory_order_relaxed);
  stats.breaker_fast_fails =
      breaker_fast_fails_.load(std::memory_order_relaxed);
  stats.backoff_ns = backoff_ns_.load(std::memory_order_relaxed);
  stats.items_recovered = items_recovered_.load(std::memory_order_relaxed);
  stats.breaker_transitions = breaker_.transitions();
  return stats;
}

}  // namespace oasis
