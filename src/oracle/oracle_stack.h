#ifndef OASIS_ORACLE_ORACLE_STACK_H_
#define OASIS_ORACLE_ORACLE_STACK_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/oracle.h"
#include "oracle/remote_oracle.h"
#include "oracle/retry_policy.h"
#include "oracle/shared_label_store.h"

namespace oasis {

/// Declarative description of one oracle decorator stack — which of the
/// repo's three decorators to layer over a base oracle, and with what
/// options. This is the value type that travels through RunnerOptions, the
/// service protocol and config files; OracleStackBuilder turns it into a
/// live stack.
///
/// Layer order is fixed by the fault model (docs/FAULT_MODEL.md) and not
/// configurable: base <- FaultInjecting <- Remote <- Retrying, so retried
/// trips are re-priced by the latency model and backoff lands on the same
/// simulated clock. Unset layers are simply skipped.
struct StackSpec {
  /// When set, splice a FaultInjectingOracle directly over the base oracle
  /// (chaos is injected under the latency model, so every retried trip is
  /// re-priced).
  std::optional<FaultInjectionOptions> fault_injection;
  /// When set, wrap the stack so far in a RemoteOracle pricing every label
  /// under this latency/cost model.
  std::optional<RemoteOracleOptions> remote;
  /// When set, top the stack with a RetryingOracle under this policy — the
  /// layer a LabelCache should then talk to.
  std::optional<RetryPolicy> retry;
  /// With `remote` set: route fetches through the SharedLabelStore handed to
  /// OracleStackBuilder::ShareLabels, so an item fetched by ANY stack over
  /// the same store is never re-fetched over the simulated wire. Ignored
  /// without a remote layer (there is no wire to share).
  bool share_labels = false;

  /// Whether any layer is configured (an empty spec builds a pass-through
  /// stack whose top IS the base oracle).
  bool any() const {
    return fault_injection.has_value() || remote.has_value() ||
           retry.has_value();
  }
};

/// An owned, live oracle decorator stack produced by OracleStackBuilder:
/// the decorators (heap-allocated, so their addresses survive moves) plus
/// typed accessors to each layer. `top()` is the oracle a LabelCache should
/// talk to. The base oracle is NOT owned and must outlive the stack.
class OracleStack {
 public:
  /// The outermost layer — what callers label through. Always valid; equals
  /// the base oracle when the spec configured no layers.
  const Oracle& top() const { return *top_; }

  /// The fault-injection layer, or nullptr when the spec had none.
  const FaultInjectingOracle* fault_injecting() const { return faulty_.get(); }
  /// The remote (latency/cost) layer, or nullptr when the spec had none.
  const RemoteOracle* remote() const { return remote_.get(); }
  /// The retry layer, or nullptr when the spec had none.
  const RetryingOracle* retrying() const { return retrying_.get(); }

  /// The spec the stack was built from (post ForkSeeds, i.e. with the seeds
  /// actually in force).
  const StackSpec& spec() const { return spec_; }

 private:
  friend class OracleStackBuilder;

  StackSpec spec_;
  std::unique_ptr<FaultInjectingOracle> faulty_;
  std::unique_ptr<RemoteOracle> remote_;
  std::unique_ptr<RetryingOracle> retrying_;
  const Oracle* top_ = nullptr;
};

/// Fluent builder for oracle decorator stacks — the single place in the
/// repo that composes Retrying(Remote(FaultInjecting(base))). Callers
/// describe the stack (directly or via a StackSpec), then Build() it over a
/// base oracle:
///
///   OASIS_ASSIGN_OR_RETURN(
///       OracleStack stack,
///       OracleStackBuilder()
///           .FaultInjection(chaos)
///           .Remote(latency_model)
///           .Retry(policy)
///           .ShareLabels(&store)
///           .ForkSeeds(repeat)
///           .Build(&oracle));
///   LabelCache labels(&stack.top());
///
/// The builder is a value type: reusable, copyable, and cheap. Build() may
/// be called repeatedly (e.g. once per repeat or per session), producing
/// independent stacks.
class OracleStackBuilder {
 public:
  /// An empty builder (no layers).
  OracleStackBuilder() = default;
  /// A builder preloaded with `spec`'s layers.
  explicit OracleStackBuilder(const StackSpec& spec) : spec_(spec) {}

  /// Adds (or replaces) the fault-injection layer.
  OracleStackBuilder& FaultInjection(const FaultInjectionOptions& options);
  /// Adds (or replaces) the remote latency/cost layer.
  OracleStackBuilder& Remote(const RemoteOracleOptions& options);
  /// Adds (or replaces) the retry layer.
  OracleStackBuilder& Retry(const RetryPolicy& policy);
  /// Routes the remote layer's fetches through `store` (cross-stack label
  /// sharing; see StackSpec::share_labels). nullptr turns sharing off. The
  /// store must outlive every stack built and cover the base oracle's items;
  /// RemoteOracle itself gates engagement on the base being deterministic
  /// and RNG-free.
  OracleStackBuilder& ShareLabels(SharedLabelStore* store);

  /// Decorrelates the stack's deterministic randomness across sibling stacks
  /// (the experiment runner's repeats, the service's sessions): replaces the
  /// fault seed and the remote jitter seed with Rng::Fork(seed, stream)
  /// .NextUint64() of themselves. Build(stream = r) on the original options
  /// therefore reproduces the historical runner's per-repeat stacks exactly,
  /// bit for bit. Apply at most once per Build.
  OracleStackBuilder& ForkSeeds(uint64_t stream);

  /// Builds the stack over `base` (non-null; must outlive the stack).
  /// Validates the layer options (the decorators check their own invariants)
  /// and the sharing prerequisites. The returned stack owns its decorators;
  /// moving it keeps every layer address stable.
  Result<OracleStack> Build(const Oracle* base) const;

  /// The spec as configured so far (ForkSeeds applies at Build time and is
  /// not reflected here).
  const StackSpec& spec() const { return spec_; }

 private:
  StackSpec spec_;
  SharedLabelStore* store_ = nullptr;
  std::optional<uint64_t> fork_stream_;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_ORACLE_STACK_H_
