#include "oracle/async_label_pipeline.h"

#include "common/logging.h"

namespace oasis {

AsyncLabelPipeline::AsyncLabelPipeline(LabelCache* labels, ThreadPool* pool)
    : labels_(labels), pool_(pool) {
  OASIS_CHECK(labels != nullptr);
  OASIS_CHECK(pool != nullptr);
}

AsyncLabelPipeline::~AsyncLabelPipeline() {
  if (!in_flight_) return;
  try {
    handle_.Wait();
  } catch (...) {
    // Wait() rethrows the batch's exception; a destructor must swallow it
    // (the drained batch's outcome — status or exception — is discarded).
  }
}

Status AsyncLabelPipeline::Prefetch(std::span<const int64_t> items, Rng* rng,
                                    std::span<uint8_t> out_labels) {
  if (in_flight_) {
    return Status::FailedPrecondition(
        "AsyncLabelPipeline: a batch is already in flight; Collect() first");
  }
  if (labels_->oracle().labelling_consumes_rng()) {
    return Status::FailedPrecondition(
        "AsyncLabelPipeline: prefetching an RNG-consuming oracle would "
        "reorder its label draws relative to the caller's stream");
  }
  OASIS_CHECK(rng != nullptr);
  batch_status_ = Status::OK();
  handle_ = pool_->Submit([this, items, rng, out_labels] {
    batch_status_ = labels_->QueryBatch(items, *rng, out_labels);
  });
  in_flight_ = true;
  return Status::OK();
}

Status AsyncLabelPipeline::Collect() {
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "AsyncLabelPipeline: Collect() without a batch in flight");
  }
  handle_.Wait();
  in_flight_ = false;
  return batch_status_;
}

}  // namespace oasis
