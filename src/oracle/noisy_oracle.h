#ifndef OASIS_ORACLE_NOISY_ORACLE_H_
#define OASIS_ORACLE_NOISY_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "oracle/oracle.h"

namespace oasis {

/// Randomised oracle with an arbitrary probability p(1|z) per item — the
/// general regime of Definition 4 (e.g., a pool of crowd annotators whose
/// majority answer is stochastic).
class NoisyOracle : public Oracle {
 public:
  /// Builds from per-item probabilities (each in [0, 1]).
  static Result<NoisyOracle> FromProbabilities(std::vector<double> probabilities);

  /// Builds from ground truth labels with a symmetric flip rate: a true match
  /// is labelled 1 with probability 1 - flip_rate, a non-match with
  /// probability flip_rate. flip_rate must lie in [0, 0.5).
  static Result<NoisyOracle> FromTruthWithFlipNoise(
      const std::vector<uint8_t>& truth, double flip_rate);

  /// One fresh Bernoulli(p(1|item)) draw from the caller's RNG.
  bool Label(int64_t item, Rng& rng) const override;
  /// Vectorised Bernoulli draws: one virtual call for the whole batch, with
  /// the RNG consumed in `items` order (same stream as sequential Label()).
  void LabelBatch(std::span<const int64_t> items, Rng& rng,
                  std::span<uint8_t> out) const override;
  /// The configured p(1|item).
  double TrueProbability(int64_t item) const override;
  /// True only when every probability is exactly 0 or 1 (then label caching
  /// is sound and LabelCache applies it).
  bool deterministic() const override { return deterministic_; }
  /// Size of the probability vector.
  int64_t num_items() const override {
    return static_cast<int64_t>(probabilities_.size());
  }

 private:
  explicit NoisyOracle(std::vector<double> probabilities);

  std::vector<double> probabilities_;
  bool deterministic_ = false;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_NOISY_ORACLE_H_
