#ifndef OASIS_ORACLE_SHARED_LABEL_STORE_H_
#define OASIS_ORACLE_SHARED_LABEL_STORE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace oasis {

/// Cross-caller label store that lets many `RemoteOracle` instances — one per
/// experiment repeat, possibly on different threads — share fetched labels so
/// that no pool item is ever sent over the (simulated) wire twice.
///
/// Motivation: `LabelCache` deduplicates queries *within* one repeat, but the
/// experiment runner's repeats are independent observers and each keeps its
/// own cache — so 100 repeats of a Figure-2 curve would fetch the same
/// popular pool items from a remote oracle up to 100 times. For a
/// deterministic, RNG-free oracle the label of an item is a pure lookup, so
/// replaying a label fetched by *any* repeat is exactly equivalent to
/// re-fetching it; the store turns repeated cross-repeat misses into shared
/// round-trips (the first requester pays, everyone else replays for free).
///
/// Soundness: sharing is only valid when the wrapped oracle is deterministic
/// AND never consumes the caller's RNG (`Oracle::deterministic()` &&
/// `!Oracle::labelling_consumes_rng()`); a noisy oracle must produce a fresh
/// draw per query. `RemoteOracle` enforces the gate — it silently bypasses a
/// store it was given when the inner oracle does not qualify.
///
/// Determinism: labels, the *set* of items fetched remotely, and therefore
/// the aggregate per-label monetary cost are scheduling-independent (each
/// repeat's miss sequence depends only on its own RNG stream, and FetchThrough
/// resolves each item exactly once globally under one lock). How misses
/// *cluster into round trips* is not: which repeat first requests a given
/// item depends on thread interleaving, so shared-mode round-trip and latency
/// totals are reproducible only under a single-threaded runner (they are
/// always bounded above by the unshared totals). See docs/ORACLES.md.
///
/// Thread-safety: all methods are safe for concurrent callers; FetchThrough
/// holds one mutex across partition + fetch + insert so each item is fetched
/// exactly once (the fetch callback must therefore be cheap or the callers
/// tolerant of serialisation — for simulated remote oracles the inner fetch
/// is a local memory lookup).
class SharedLabelStore {
 public:
  /// Creates an empty store covering items [0, num_items).
  explicit SharedLabelStore(int64_t num_items);

  /// Callback that resolves the store's misses: receives the novel items (in
  /// first-request order, duplicates removed) and must write one 0/1 label
  /// per item into the output span.
  using FetchFn =
      std::function<void(std::span<const int64_t> novel, std::span<uint8_t> out)>;

  /// Resolves `items` through the store: already-stored labels are copied
  /// into `out`; the rest are resolved via ONE `fetch` call (omitted when
  /// every item is stored) and recorded for future callers. In-batch
  /// duplicates are fetched once. Returns the number of items answered from
  /// the store (the caller's round-trip saving). `items` and `out` must have
  /// equal lengths.
  int64_t FetchThrough(std::span<const int64_t> items, std::span<uint8_t> out,
                       const FetchFn& fetch);

  /// Number of distinct items fetched (and stored) so far.
  int64_t items_stored() const;

  /// Total store hits served across all FetchThrough calls.
  int64_t total_hits() const;

  /// Items the store covers.
  int64_t num_items() const { return static_cast<int64_t>(state_.size()); }

 private:
  // 0 = absent, 1 = stored label 0, 2 = stored label 1.
  std::vector<uint8_t> state_;
  mutable std::mutex mutex_;
  int64_t items_stored_ = 0;
  int64_t total_hits_ = 0;
  // Scratch for FetchThrough (novel items and their labels), reused across
  // calls; guarded by mutex_.
  std::vector<int64_t> novel_items_;
  std::vector<uint8_t> novel_labels_;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_SHARED_LABEL_STORE_H_
