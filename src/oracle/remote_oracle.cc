#include "oracle/remote_oracle.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {

/// Registry-side mirrors of the RemoteOracle atomics, shared by every
/// instance (the registry aggregates where per-instance stats() separates).
struct OracleMetrics {
  telemetry::Counter& round_trips;
  telemetry::Counter& labels_fetched;
  telemetry::Counter& latency_ns;
  telemetry::Counter& store_hits;
};

OracleMetrics& Metrics() {
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  static OracleMetrics metrics{
      registry.AddCounter("oasis_oracle_round_trips_total",
                          "Simulated wire round trips issued to the remote "
                          "oracle (batched fetch pages)."),
      registry.AddCounter("oasis_oracle_labels_fetched_total",
                          "Labels delivered over the wire (billed labels)."),
      registry.AddCounter("oasis_oracle_simulated_latency_ns_total",
                          "Simulated wire latency accumulated by the "
                          "latency model, in nanoseconds."),
      registry.AddCounter("oasis_oracle_store_hits_total",
                          "Queries answered by the shared label store "
                          "without touching the wire."),
  };
  return metrics;
}

/// Order-sensitive 64-bit fingerprint of a trip's items (FNV-1a over the
/// item ids). Keys the jitter stream: the same trip content always draws the
/// same jitter, whichever thread sends it and in whatever global order.
uint64_t FingerprintItems(std::span<const int64_t> items) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int64_t item : items) {
    h ^= static_cast<uint64_t>(item);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

RemoteOracle::RemoteOracle(const Oracle* inner, const RemoteOracleOptions& options,
                           SharedLabelStore* store)
    : inner_(inner), options_(options), store_(store) {
  OASIS_CHECK(inner != nullptr);
  OASIS_CHECK(options.round_trip_seconds >= 0.0);
  OASIS_CHECK(options.per_item_seconds >= 0.0);
  OASIS_CHECK(options.cost_per_label >= 0.0);
  OASIS_CHECK(options.jitter_fraction >= 0.0 && options.jitter_fraction < 1.0);
  OASIS_CHECK(options.max_items_per_round_trip >= 0);
  // Sharing fetched labels is only sound when a replay is indistinguishable
  // from a fresh query: deterministic labels that never consume the caller's
  // RNG, from an inner oracle that cannot fail mid-fetch. Otherwise the
  // store is ignored (documented on SharedLabelStore).
  if (store_ != nullptr &&
      (!inner_->deterministic() || inner_->labelling_consumes_rng() ||
       inner_->fallible())) {
    store_ = nullptr;
  }
  if (store_ != nullptr) {
    OASIS_CHECK(store_->num_items() >= inner_->num_items());
  }
}

int64_t RemoteOracle::TripLatencyNs(std::span<const int64_t> trip) const {
  double seconds = options_.round_trip_seconds +
                   static_cast<double>(trip.size()) * options_.per_item_seconds;
  if (options_.jitter_fraction > 0.0) {
    Rng jitter_rng = Rng::Fork(options_.jitter_seed, FingerprintItems(trip));
    seconds *= 1.0 + options_.jitter_fraction * jitter_rng.NextDouble();
  }
  return static_cast<int64_t>(std::llround(seconds * 1e9));
}

int64_t RemoteOracle::AccountFetch(std::span<const int64_t> fetched) const {
  if (fetched.empty()) return 0;
  const int64_t n = static_cast<int64_t>(fetched.size());
  const int64_t per_trip = options_.max_items_per_round_trip > 0
                               ? options_.max_items_per_round_trip
                               : n;
  int64_t latency_ns = 0;
  int64_t trips = 0;
  for (int64_t lo = 0; lo < n; lo += per_trip) {
    const int64_t hi = std::min(n, lo + per_trip);
    latency_ns += TripLatencyNs(fetched.subspan(static_cast<size_t>(lo),
                                                static_cast<size_t>(hi - lo)));
    ++trips;
  }
  round_trips_.fetch_add(trips, std::memory_order_relaxed);
  labels_fetched_.fetch_add(n, std::memory_order_relaxed);
  simulated_latency_ns_.fetch_add(latency_ns, std::memory_order_relaxed);
  if (OASIS_TELEMETRY_ON) {
    OracleMetrics& metrics = Metrics();
    metrics.round_trips.Add(trips);
    metrics.labels_fetched.Add(n);
    metrics.latency_ns.Add(latency_ns);
  }
  return latency_ns;
}

void RemoteOracle::MaybeRealize(int64_t latency_ns) const {
  if (!options_.realize_latency || latency_ns <= 0) return;
  const double scaled_ns =
      static_cast<double>(latency_ns) * options_.realize_scale;
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(scaled_ns)));
}

bool RemoteOracle::Label(int64_t item, Rng& rng) const {
  uint8_t label = 0;
  const int64_t items[1] = {item};
  LabelBatch(items, rng, std::span<uint8_t>(&label, 1));
  return label != 0;
}

void RemoteOracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                              std::span<uint8_t> out) const {
  OASIS_DCHECK(items.size() == out.size());
  if (items.empty()) return;
  TELEMETRY_SPAN("label_batch", "oracle");
  queries_.fetch_add(static_cast<int64_t>(items.size()),
                     std::memory_order_relaxed);
  if (store_ == nullptr) {
    MaybeRealize(AccountFetch(items));
    inner_->LabelBatch(items, rng, out);
    return;
  }
  // Shared store: only globally-novel items touch the wire; everything else
  // is a free replay. The store holds its lock across the fetch, so each
  // item is fetched exactly once however many repeats race for it. The inner
  // oracle is RNG-free here (store gate), so the fetch never consumes `rng`
  // and the caller's stream is identical with or without the store. Any
  // realized sleep happens after the store released its lock — a sleeping
  // repeat must not serialise every other repeat's fetch behind it.
  int64_t fetched_latency_ns = 0;
  const int64_t hits = store_->FetchThrough(
      items, out, [&](std::span<const int64_t> novel, std::span<uint8_t> novel_out) {
        fetched_latency_ns = AccountFetch(novel);
        inner_->LabelBatch(novel, rng, novel_out);
      });
  store_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (OASIS_TELEMETRY_ON) Metrics().store_hits.Add(hits);
  MaybeRealize(fetched_latency_ns);
}

Status RemoteOracle::TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                                   std::span<uint8_t> out,
                                   std::span<uint8_t> resolved) const {
  OASIS_DCHECK(items.size() == out.size());
  OASIS_DCHECK(items.size() == resolved.size());
  if (!inner_->fallible()) {
    LabelBatch(items, rng, out);
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 1;
    return Status::OK();
  }
  for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
  if (items.empty()) return Status::OK();
  TELEMETRY_SPAN("try_label_batch", "oracle");
  queries_.fetch_add(static_cast<int64_t>(items.size()),
                     std::memory_order_relaxed);
  // Page into round trips exactly like AccountFetch, but attempt each trip
  // separately: a failing trip still costs its latency (the wire time was
  // spent), while only delivered items are billed per label.
  const int64_t n = static_cast<int64_t>(items.size());
  const int64_t per_trip =
      options_.max_items_per_round_trip > 0 ? options_.max_items_per_round_trip
                                            : n;
  for (int64_t lo = 0; lo < n; lo += per_trip) {
    const int64_t hi = std::min(n, lo + per_trip);
    const size_t trip_lo = static_cast<size_t>(lo);
    const size_t trip_len = static_cast<size_t>(hi - lo);
    const std::span<const int64_t> trip = items.subspan(trip_lo, trip_len);
    const int64_t latency_ns = TripLatencyNs(trip);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    simulated_latency_ns_.fetch_add(latency_ns, std::memory_order_relaxed);
    if (OASIS_TELEMETRY_ON) {
      OracleMetrics& metrics = Metrics();
      metrics.round_trips.Increment();
      metrics.latency_ns.Add(latency_ns);
    }
    MaybeRealize(latency_ns);
    const Status status = inner_->TryLabelBatch(
        trip, rng, out.subspan(trip_lo, trip_len),
        resolved.subspan(trip_lo, trip_len));
    int64_t delivered = 0;
    for (size_t i = 0; i < trip_len; ++i) {
      delivered += resolved[trip_lo + i] != 0 ? 1 : 0;
    }
    labels_fetched_.fetch_add(delivered, std::memory_order_relaxed);
    if (OASIS_TELEMETRY_ON) Metrics().labels_fetched.Add(delivered);
    OASIS_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

bool RemoteOracle::fallible() const { return inner_->fallible(); }

void RemoteOracle::ChargeAuxiliaryLatencyNs(int64_t ns) const {
  if (ns <= 0) return;
  simulated_latency_ns_.fetch_add(ns, std::memory_order_relaxed);
  MaybeRealize(ns);
}

double RemoteOracle::TrueProbability(int64_t item) const {
  return inner_->TrueProbability(item);
}

bool RemoteOracle::deterministic() const { return inner_->deterministic(); }

bool RemoteOracle::labelling_consumes_rng() const {
  return inner_->labelling_consumes_rng();
}

int64_t RemoteOracle::num_items() const { return inner_->num_items(); }

RemoteOracleStats RemoteOracle::stats() const {
  RemoteOracleStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.round_trips = round_trips_.load(std::memory_order_relaxed);
  stats.labels_fetched = labels_fetched_.load(std::memory_order_relaxed);
  stats.store_hits = store_hits_.load(std::memory_order_relaxed);
  stats.simulated_latency_ns =
      simulated_latency_ns_.load(std::memory_order_relaxed);
  stats.label_cost =
      static_cast<double>(stats.labels_fetched) * options_.cost_per_label;
  return stats;
}

}  // namespace oasis
