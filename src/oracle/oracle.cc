#include "oracle/oracle.h"

namespace oasis {

// Oracle is an interface; the out-of-line key function lives here so the
// vtable has a home translation unit.

}  // namespace oasis
