#include "oracle/oracle.h"

#include "common/logging.h"

namespace oasis {

void Oracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                        std::span<uint8_t> out) const {
  OASIS_DCHECK(items.size() == out.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = Label(items[i], rng) ? 1 : 0;
  }
}

Status Oracle::TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                             std::span<uint8_t> out,
                             std::span<uint8_t> resolved) const {
  OASIS_DCHECK(items.size() == out.size());
  OASIS_DCHECK(items.size() == resolved.size());
  LabelBatch(items, rng, out);
  for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 1;
  return Status::OK();
}

}  // namespace oasis
