#include "oracle/fault_injecting_oracle.h"

#include <vector>

#include "common/logging.h"

namespace oasis {

FaultInjectingOracle::FaultInjectingOracle(const Oracle* inner,
                                           const FaultInjectionOptions& options)
    : inner_(inner), options_(options) {
  OASIS_CHECK(inner != nullptr);
  OASIS_CHECK(options.transient_failure_rate >= 0.0 &&
              options.transient_failure_rate <= 1.0);
  OASIS_CHECK(options.timeout_rate >= 0.0 && options.timeout_rate <= 1.0);
  OASIS_CHECK(options.item_drop_rate >= 0.0 && options.item_drop_rate <= 1.0);
}

bool FaultInjectingOracle::AnyFaultsConfigured() const {
  return options_.transient_failure_rate > 0.0 || options_.timeout_rate > 0.0 ||
         options_.item_drop_rate > 0.0 || options_.outage_after_attempts >= 0;
}

bool FaultInjectingOracle::Label(int64_t item, Rng& rng) const {
  return inner_->Label(item, rng);
}

void FaultInjectingOracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                                      std::span<uint8_t> out) const {
  inner_->LabelBatch(items, rng, out);
}

Status FaultInjectingOracle::TryLabelBatch(std::span<const int64_t> items,
                                           Rng& rng, std::span<uint8_t> out,
                                           std::span<uint8_t> resolved) const {
  OASIS_DCHECK(items.size() == out.size());
  OASIS_DCHECK(items.size() == resolved.size());
  // The attempt number is consumed even on the zero-fault fast path so that
  // turning faults on/off never shifts a later decorator's schedule.
  const int64_t attempt = next_attempt_.fetch_add(1, std::memory_order_relaxed);
  if (!AnyFaultsConfigured()) {
    return inner_->TryLabelBatch(items, rng, out, resolved);
  }

  if (options_.outage_after_attempts >= 0 &&
      attempt >= options_.outage_after_attempts) {
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    outage_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "FaultInjectingOracle: permanent outage (injected)");
  }

  // One forked stream per attempt; the draw order below is fixed, so the
  // whole schedule is a pure function of (seed, attempt number).
  Rng fault_rng = Rng::Fork(options_.seed, static_cast<uint64_t>(attempt));
  if (fault_rng.NextDouble() < options_.transient_failure_rate) {
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    injected_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "FaultInjectingOracle: transient failure (injected)");
  }
  if (fault_rng.NextDouble() < options_.timeout_rate) {
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    injected_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded(
        "FaultInjectingOracle: timeout (injected)");
  }
  if (options_.item_drop_rate <= 0.0 || items.empty()) {
    return inner_->TryLabelBatch(items, rng, out, resolved);
  }

  // Partial batch: drop each item independently, delegate the surviving
  // subset in original order, and scatter the results back. Delegating a
  // subset keeps the inner oracle's per-item work identical to a direct
  // request for exactly those items — the canonical (RNG-free deterministic)
  // inner oracles return the same labels whichever subsets they arrive in.
  std::vector<int64_t> kept_items;
  std::vector<size_t> kept_positions;
  kept_items.reserve(items.size());
  kept_positions.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    resolved[i] = 0;
    if (fault_rng.NextBernoulli(options_.item_drop_rate)) continue;
    kept_items.push_back(items[i]);
    kept_positions.push_back(i);
  }
  dropped_items_.fetch_add(
      static_cast<int64_t>(items.size() - kept_items.size()),
      std::memory_order_relaxed);
  if (kept_items.empty()) return Status::OK();
  std::vector<uint8_t> kept_out(kept_items.size());
  std::vector<uint8_t> kept_resolved(kept_items.size());
  const Status status =
      inner_->TryLabelBatch(kept_items, rng, kept_out, kept_resolved);
  for (size_t j = 0; j < kept_items.size(); ++j) {
    if (kept_resolved[j] == 0) continue;
    out[kept_positions[j]] = kept_out[j];
    resolved[kept_positions[j]] = 1;
  }
  return status;
}

double FaultInjectingOracle::TrueProbability(int64_t item) const {
  return inner_->TrueProbability(item);
}

bool FaultInjectingOracle::deterministic() const {
  return inner_->deterministic();
}

bool FaultInjectingOracle::labelling_consumes_rng() const {
  return inner_->labelling_consumes_rng();
}

int64_t FaultInjectingOracle::num_items() const { return inner_->num_items(); }

FaultInjectionStats FaultInjectingOracle::stats() const {
  FaultInjectionStats stats;
  stats.attempts = next_attempt_.load(std::memory_order_relaxed);
  stats.injected_failures = injected_failures_.load(std::memory_order_relaxed);
  stats.injected_timeouts = injected_timeouts_.load(std::memory_order_relaxed);
  stats.dropped_items = dropped_items_.load(std::memory_order_relaxed);
  stats.outage_failures = outage_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace oasis
