#ifndef OASIS_ORACLE_LABEL_CACHE_H_
#define OASIS_ORACLE_LABEL_CACHE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "oracle/oracle.h"

namespace oasis {

/// Budget-accounting front-end to an Oracle.
///
/// All samplers in this library sample with replacement; per the paper
/// (footnote 5), a pool item is charged to the label budget only the first
/// time its label is queried. For deterministic oracles the first label is
/// cached and replayed for free on re-queries. For noisy oracles every query
/// is a fresh Bernoulli draw and every query is charged — matching the
/// "repeated labelling to average out noise" regime of Section 2.2.
class LabelCache {
 public:
  /// The oracle must outlive the cache. Caching behaviour follows
  /// oracle->deterministic(). The cache only ever reads from the oracle
  /// (labelling is const), so many caches — one per experiment repeat,
  /// possibly on different threads — can safely share one oracle.
  explicit LabelCache(const Oracle* oracle);

  /// Returns a label for `item`, charging the budget per the policy above.
  bool Query(int64_t item, Rng& rng);

  /// Fallible single-item query: over a reliable oracle this is exactly
  /// Query() (same code path, zero overhead); over a fallible stack (see
  /// Oracle::fallible()) it is a one-item QueryBatch, so a failure is
  /// reported as a Status instead of crashing and NOTHING is charged for the
  /// failed item (budget counters move only when a label actually arrives).
  Result<bool> TryQuery(int64_t item, Rng& rng);

  /// Labels a whole batch with semantics exactly equal to calling Query()
  /// once per item of `items` in order — same labels, same budget counters
  /// (including free replays of items already cached, and of duplicates
  /// *within* the batch after their first occurrence), and the same RNG
  /// stream — but with at most ONE Oracle::LabelBatch round-trip for all of
  /// the batch's cache misses. This is what lets Sampler::StepBatch amortise
  /// oracle round-trips rather than just virtual dispatch. `out_labels` must
  /// have items.size() entries (each receives 0 or 1); an empty batch is a
  /// no-op. Fails with InvalidArgument on a size mismatch.
  ///
  /// Over a fallible oracle stack (Oracle::fallible()), the miss round-trip
  /// may fail or resolve only a subset; the cache then re-requests ONLY the
  /// still-missing items until everything resolves, the stack reports an
  /// error, or a round makes no progress (reported as kUnavailable). Each
  /// miss is charged to the budget exactly once, at the moment its label
  /// actually arrives — retries and re-requests never double-charge, and a
  /// failed call charges nothing for the items that never resolved (their
  /// labels stay cached-and-paid if a LATER call succeeds). On a non-OK
  /// return `out_labels` is unspecified and no caller-visible label was
  /// consumed for the unresolved items.
  Status QueryBatch(std::span<const int64_t> items, Rng& rng,
                    std::span<uint8_t> out_labels);

  /// Labels charged to the budget so far.
  int64_t labels_consumed() const { return labels_consumed_; }

  /// Total queries including free cache hits.
  int64_t total_queries() const { return total_queries_; }

  /// Number of distinct items labelled at least once.
  int64_t distinct_items_labelled() const { return distinct_items_; }

  /// True when `item` has been queried before (deterministic mode only
  /// returns meaningful values; noisy mode also tracks first-touch).
  bool IsLabelled(int64_t item) const;

  /// The wrapped oracle (e.g. to check deterministic() or num_items()).
  const Oracle& oracle() const { return *oracle_; }

 private:
  /// The re-request loop behind QueryBatch when the oracle stack is fallible
  /// (see QueryBatch's fallible contract).
  Status QueryBatchFallible(std::span<const int64_t> items, Rng& rng,
                            std::span<uint8_t> out_labels);

  const Oracle* oracle_;
  // 0 = never queried, 1 = cached label 0, 2 = cached label 1, 3 = noisy
  // first-touch marker, 4 = transient QueryBatch miss-pending marker (never
  // persists past a QueryBatch call).
  std::vector<uint8_t> cache_;
  // Scratch for QueryBatch (first-occurrence cache misses and their labels),
  // reused across calls so steady-state batches do not allocate.
  std::vector<int64_t> miss_items_;
  std::vector<uint8_t> miss_labels_;
  // Extra scratch for the fallible paths: per-request resolution flags and
  // (noisy mode) the batch positions still awaiting a label.
  std::vector<uint8_t> miss_resolved_;
  std::vector<size_t> pending_positions_;
  int64_t labels_consumed_ = 0;
  int64_t total_queries_ = 0;
  int64_t distinct_items_ = 0;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_LABEL_CACHE_H_
