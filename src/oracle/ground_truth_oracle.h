#ifndef OASIS_ORACLE_GROUND_TRUTH_ORACLE_H_
#define OASIS_ORACLE_GROUND_TRUTH_ORACLE_H_

#include <cstdint>
#include <vector>

#include "oracle/oracle.h"

namespace oasis {

/// Deterministic oracle backed by a ground-truth label vector, as used in all
/// of the paper's experiments (p(1|z) in {0, 1}).
class GroundTruthOracle : public Oracle {
 public:
  /// Takes ownership of the 0/1 truth vector (one entry per pool item).
  explicit GroundTruthOracle(std::vector<uint8_t> truth);

  /// Returns the ground-truth label; never consumes the RNG.
  bool Label(int64_t item, Rng& rng) const override;
  /// Vectorised truth lookup: one virtual call for the whole batch, no RNG
  /// consumption (the oracle is deterministic).
  void LabelBatch(std::span<const int64_t> items, Rng& rng,
                  std::span<uint8_t> out) const override;
  /// Exactly 0 or 1: the stored truth bit.
  double TrueProbability(int64_t item) const override;
  /// Always true; LabelCache caches and replays labels for free.
  bool deterministic() const override { return true; }
  /// Labelling is a pure lookup — never touches the caller's RNG, so batched
  /// callers may reorder draws relative to queries freely.
  bool labelling_consumes_rng() const override { return false; }
  /// Size of the truth vector.
  int64_t num_items() const override { return static_cast<int64_t>(truth_.size()); }

  /// Total number of true matches (used by dataset statistics tables).
  int64_t num_positives() const { return num_positives_; }

 private:
  std::vector<uint8_t> truth_;
  int64_t num_positives_ = 0;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_GROUND_TRUTH_ORACLE_H_
