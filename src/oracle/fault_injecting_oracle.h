#ifndef OASIS_ORACLE_FAULT_INJECTING_ORACLE_H_
#define OASIS_ORACLE_FAULT_INJECTING_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "oracle/oracle.h"

namespace oasis {

/// Deterministic chaos schedule of a FaultInjectingOracle. Every fault
/// decision of attempt number a is drawn from Rng::Fork(seed, a) — never from
/// the caller's RNG — so a chaos run is bit-reproducible from (options,
/// attempt sequence) and the labels that DO get through are bit-identical to
/// a fault-free run (see docs/FAULT_MODEL.md).
struct FaultInjectionOptions {
  /// Probability that a whole TryLabelBatch attempt fails transiently
  /// (kUnavailable, nothing resolved) — a crashed worker, a dropped
  /// connection.
  double transient_failure_rate = 0.0;

  /// Probability that a whole attempt times out (kDeadlineExceeded, nothing
  /// resolved) — the service never answered within the caller's patience.
  /// Evaluated after the transient-failure draw on the same attempt stream.
  double timeout_rate = 0.0;

  /// Per-item probability that an otherwise-successful attempt omits the
  /// item from its response (resolved 0, status OK) — a crowd task page with
  /// some judgements missing. The caller must re-request the missing items.
  double item_drop_rate = 0.0;

  /// When >= 0: every attempt with index >= this value fails with
  /// kUnavailable — a permanent outage after a grace period (0 = down from
  /// the start). -1 disables the outage.
  int64_t outage_after_attempts = -1;

  /// Seed of the per-attempt fault streams (see struct comment).
  uint64_t seed = 0xfa17ULL;
};

/// Counters of the chaos actually injected so far (see
/// FaultInjectingOracle::stats()).
struct FaultInjectionStats {
  int64_t attempts = 0;            ///< TryLabelBatch attempts observed.
  int64_t injected_failures = 0;   ///< Whole-attempt transient failures.
  int64_t injected_timeouts = 0;   ///< Whole-attempt timeouts.
  int64_t dropped_items = 0;       ///< Items omitted from partial batches.
  int64_t outage_failures = 0;     ///< Attempts refused by the outage.
};

/// Decorator that injects failures into any Oracle's fallible labelling path,
/// from a deterministic seeded schedule. Composable under or over
/// RemoteOracle: under it, every retried trip is re-priced by the latency
/// model; over it, faults hit before any latency is charged.
///
/// Failure taxonomy per TryLabelBatch attempt (docs/FAULT_MODEL.md):
///  1. permanent outage (outage_after_attempts) -> kUnavailable forever;
///  2. transient failure (transient_failure_rate) -> kUnavailable, retryable;
///  3. timeout (timeout_rate) -> kDeadlineExceeded, retryable;
///  4. partial batch (item_drop_rate) -> OK with some items unresolved.
/// Labels that do resolve are delegated verbatim to the inner oracle —
/// injection changes *when* a label arrives, never its value — which is what
/// makes a fully-recovered chaos run bit-identical to a fault-free one.
///
/// The infallible Label()/LabelBatch() entry points delegate straight to the
/// inner oracle with no injection: they have no way to report failure, and
/// every fault-aware caller goes through TryLabelBatch (LabelCache routes on
/// fallible()).
///
/// Thread-safety: labelling is const and the attempt counter/stats are
/// atomic, so the decorator is shareable like any Oracle; the attempt
/// numbering (and hence the fault schedule) is deterministic whenever each
/// instance has a single caller — the per-repeat arrangement the experiment
/// runner uses.
class FaultInjectingOracle : public Oracle {
 public:
  /// Wraps `inner` (non-null, must outlive this decorator) under the given
  /// chaos schedule. Checks rates lie in [0, 1].
  FaultInjectingOracle(const Oracle* inner,
                       const FaultInjectionOptions& options);

  /// Delegates to the inner oracle unchanged (no injection; see class
  /// comment).
  bool Label(int64_t item, Rng& rng) const override;

  /// Delegates to the inner oracle unchanged (no injection; see class
  /// comment).
  void LabelBatch(std::span<const int64_t> items, Rng& rng,
                  std::span<uint8_t> out) const override;

  /// The fallible path: applies the fault taxonomy above to this attempt,
  /// delegating whatever survives to the inner oracle's TryLabelBatch.
  Status TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override;

  /// The inner oracle's true probability (faults change availability, not
  /// ground truth).
  double TrueProbability(int64_t item) const override;

  /// Forwards the inner oracle's determinism (footnote-5 charging policy is
  /// unchanged by wrapping).
  bool deterministic() const override;

  /// Forwards the inner oracle's RNG discipline — fault decisions come from
  /// the decorator's own forked streams, never the caller's RNG.
  bool labelling_consumes_rng() const override;

  /// Always true: this decorator exists to make labelling fallible.
  bool fallible() const override { return true; }

  /// The inner oracle's item count.
  int64_t num_items() const override;

  /// The wrapped oracle (used by stack-walking helpers, e.g.
  /// FindRemoteOracle).
  const Oracle& inner() const { return *inner_; }

  /// The chaos schedule in force.
  const FaultInjectionOptions& options() const { return options_; }

  /// Snapshot of the injected chaos so far (per-counter atomic).
  FaultInjectionStats stats() const;

 private:
  /// Whether any fault can ever fire (false => zero-overhead delegation).
  bool AnyFaultsConfigured() const;

  const Oracle* inner_;
  FaultInjectionOptions options_;
  mutable std::atomic<int64_t> next_attempt_{0};
  mutable std::atomic<int64_t> injected_failures_{0};
  mutable std::atomic<int64_t> injected_timeouts_{0};
  mutable std::atomic<int64_t> dropped_items_{0};
  mutable std::atomic<int64_t> outage_failures_{0};
};

}  // namespace oasis

#endif  // OASIS_ORACLE_FAULT_INJECTING_ORACLE_H_
