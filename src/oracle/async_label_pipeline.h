#ifndef OASIS_ORACLE_ASYNC_LABEL_PIPELINE_H_
#define OASIS_ORACLE_ASYNC_LABEL_PIPELINE_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/thread_pool.h"
#include "oracle/label_cache.h"

namespace oasis {

/// Depth-1 asynchronous front-end to `LabelCache::QueryBatch`: while the
/// caller tallies batch t, a ThreadPool worker resolves batch t+1's labels —
/// so a genuinely remote oracle's round trip overlaps the sampler's own
/// draw/tally work instead of serialising with it.
///
/// Soundness gate: prefetching reorders label *resolution* relative to the
/// caller's item draws, which preserves the exact sequential RNG stream only
/// when labelling never consumes the caller's RNG
/// (`!Oracle::labelling_consumes_rng()` — the same gate as the samplers'
/// batched fast path, see Sampler::CanBatchQueries()). Prefetch() fails with
/// FailedPrecondition for RNG-consuming oracles.
///
/// Sequential equivalence: batches resolve strictly in submission order (at
/// most one is in flight, and Collect() must separate two Prefetch() calls),
/// so the LabelCache observes the identical QueryBatch call sequence — same
/// labels, same footnote-5 budget counters — as an unpipelined caller. The
/// overlap changes wall-clock only. This is what static samplers
/// (passive / importance / stratified) exploit via Sampler::SetPrefetchPool;
/// OASIS cannot: its next draw depends on the last label (docs/ORACLES.md).
///
/// Ownership/lifetime: the caller keeps `items` and `out_labels` alive and
/// untouched from Prefetch() to the matching Collect(). The pipeline itself
/// is single-consumer: one thread calls Prefetch/Collect.
class AsyncLabelPipeline {
 public:
  /// Binds the pipeline to a cache and a pool; both must outlive it.
  AsyncLabelPipeline(LabelCache* labels, ThreadPool* pool);

  /// Drains any in-flight batch (its status is discarded) so the buffers it
  /// references can die safely.
  ~AsyncLabelPipeline();

  /// Non-copyable: the handle to the in-flight batch is single-owner.
  AsyncLabelPipeline(const AsyncLabelPipeline&) = delete;
  /// Non-assignable (see the copy constructor).
  AsyncLabelPipeline& operator=(const AsyncLabelPipeline&) = delete;

  /// Begins resolving `items` into `out_labels` asynchronously (one
  /// LabelCache::QueryBatch call on a pool worker, passing `*rng` through —
  /// which the gated-on RNG-free oracle never touches). Fails with
  /// FailedPrecondition when a batch is already in flight or the cache's
  /// oracle consumes RNG; such failures leave nothing in flight.
  Status Prefetch(std::span<const int64_t> items, Rng* rng,
                  std::span<uint8_t> out_labels);

  /// Blocks until the in-flight batch has resolved and returns its
  /// QueryBatch status. Fails with FailedPrecondition when nothing is in
  /// flight. After Collect() returns, `out_labels` of the matching
  /// Prefetch() is fully written (on OK) and a new Prefetch() may begin.
  Status Collect();

  /// Whether a batch is between Prefetch() and Collect().
  bool in_flight() const { return in_flight_; }

 private:
  LabelCache* labels_;
  ThreadPool* pool_;
  ThreadPool::TaskHandle handle_;
  // Written by the worker task before the handle completes; reading after
  // TaskHandle::Wait() is release/acquire-ordered by the handle.
  Status batch_status_;
  bool in_flight_ = false;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_ASYNC_LABEL_PIPELINE_H_
