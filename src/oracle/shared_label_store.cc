#include "oracle/shared_label_store.h"

#include <algorithm>

#include "common/logging.h"

namespace oasis {

SharedLabelStore::SharedLabelStore(int64_t num_items) {
  OASIS_CHECK(num_items >= 0);
  // The max<> keeps the sign conversion provably non-negative for the
  // optimizer (CHECK alone does not narrow the range).
  state_.assign(static_cast<size_t>(std::max<int64_t>(num_items, 0)), 0);
}

int64_t SharedLabelStore::FetchThrough(std::span<const int64_t> items,
                                       std::span<uint8_t> out,
                                       const FetchFn& fetch) {
  OASIS_CHECK_EQ(items.size(), out.size());
  if (items.empty()) return 0;

  std::lock_guard<std::mutex> lock(mutex_);
  // Pass 1: partition into stored items and first-request novelties. A novel
  // item is marked pending (3) immediately so an in-batch duplicate is
  // fetched once; the mark is resolved below before the lock is released, so
  // other threads never observe it.
  novel_items_.clear();
  int64_t hits = 0;
  for (int64_t item : items) {
    OASIS_DCHECK(item >= 0 && item < num_items());
    uint8_t& slot = state_[static_cast<size_t>(item)];
    if (slot == 0) {
      slot = 3;
      novel_items_.push_back(item);
    } else if (slot != 3) {
      ++hits;
    }
  }
  if (!novel_items_.empty()) {
    novel_labels_.resize(novel_items_.size());
    try {
      fetch(novel_items_, novel_labels_);
    } catch (...) {
      // Roll the pending markers back to absent so a failed fetch leaves the
      // store exactly as before the call — a later caller re-fetches instead
      // of reading a phantom label.
      for (int64_t item : novel_items_) {
        state_[static_cast<size_t>(item)] = 0;
      }
      throw;
    }
    for (size_t i = 0; i < novel_items_.size(); ++i) {
      state_[static_cast<size_t>(novel_items_[i])] = novel_labels_[i] ? 2 : 1;
    }
    items_stored_ += static_cast<int64_t>(novel_items_.size());
  }
  // Pass 2: answer everything from the (now fully populated) store.
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = state_[static_cast<size_t>(items[i])] == 2 ? 1 : 0;
  }
  total_hits_ += hits;
  return hits;
}

int64_t SharedLabelStore::items_stored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_stored_;
}

int64_t SharedLabelStore::total_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_hits_;
}

}  // namespace oasis
