#ifndef OASIS_ORACLE_RETRY_POLICY_H_
#define OASIS_ORACLE_RETRY_POLICY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "oracle/oracle.h"

namespace oasis {

/// Forward declaration (remote_oracle.h): the simulated clock backoff and
/// attempt latencies are charged into when one is present in the stack.
class RemoteOracle;

/// Tunables of a RetryingOracle: bounded exponential backoff with
/// deterministic jitter, per-attempt and overall deadlines, and a circuit
/// breaker. All times are simulated seconds, charged into the underlying
/// RemoteOracle's clock when one is in the stack (see docs/FAULT_MODEL.md).
struct RetryPolicy {
  /// Total attempts per batch, including the first (>= 1). Exhausting them
  /// gives up with the last failure (or kUnavailable for a never-failing
  /// partial batch that stopped making progress).
  int max_attempts = 4;

  /// Backoff before the first retry, in simulated seconds.
  double initial_backoff_seconds = 1.0;

  /// Multiplier applied to the backoff after every retry (>= 1).
  double backoff_multiplier = 2.0;

  /// Upper bound on a single backoff wait, in simulated seconds.
  double max_backoff_seconds = 60.0;

  /// Multiplicative backoff jitter: each wait is scaled by
  /// (1 + jitter_fraction * u) with u ~ U[0, 1) from Rng::Fork(jitter_seed,
  /// wait counter). With one caller per instance (the experiment runner's
  /// per-repeat arrangement) the wait sequence — and hence the simulated
  /// clock — is a pure function of the policy and the fault schedule. Must
  /// lie in [0, 1).
  double jitter_fraction = 0.0;

  /// Seed of the jitter streams (see jitter_fraction).
  uint64_t jitter_seed = 0xbac0ffULL;

  /// When > 0: an attempt whose simulated latency exceeds this many seconds
  /// is treated as kDeadlineExceeded and its labels are discarded (they
  /// arrived after the caller stopped waiting; the wire time stays charged).
  /// Measurable only with a RemoteOracle in the stack; 0 disables.
  double per_attempt_timeout_seconds = 0.0;

  /// When > 0: once the simulated time spent in one TryLabelBatch call
  /// (attempts + backoff waits) would exceed this, the call gives up with
  /// kDeadlineExceeded instead of backing off again. 0 disables.
  double overall_deadline_seconds = 0.0;

  /// Circuit breaker: open after this many consecutive failed attempts
  /// (fast-failing subsequent calls), then admit a half-open probe after
  /// `breaker_cooldown_calls` rejected calls. 0 disables the breaker.
  int breaker_failure_threshold = 0;

  /// Calls rejected while open before a half-open probe is admitted (>= 1
  /// when the breaker is enabled).
  int64_t breaker_cooldown_calls = 8;
};

/// Classic closed -> open -> half-open circuit breaker, with the cooldown
/// measured in rejected calls rather than wall-clock (the repo's oracle time
/// is simulated, so "calls" is the monotone clock every caller shares).
/// Thread-safe; a disabled breaker (threshold 0) admits everything.
class CircuitBreaker {
 public:
  /// Observable breaker state (see State()).
  enum class State {
    kClosed,    ///< Normal operation; calls flow through.
    kOpen,      ///< Tripped; calls fail fast until the cooldown elapses.
    kHalfOpen,  ///< Probe admitted; the next outcome closes or re-opens.
  };

  /// One recorded state change. `sim_ns` is the caller-supplied timestamp of
  /// the event — RetryingOracle passes its RemoteOracle's simulated clock, so
  /// transition times line up with the latency model's timeline (0 when no
  /// clock is in the stack).
  struct Transition {
    State from = State::kClosed;  ///< State before the change.
    State to = State::kClosed;    ///< State after the change.
    int64_t sim_ns = 0;           ///< Simulated-clock timestamp of the change.
  };

  /// A breaker that opens after `failure_threshold` consecutive failures
  /// (0 = never) and half-opens after `cooldown_calls` rejections.
  CircuitBreaker(int failure_threshold, int64_t cooldown_calls);

  /// Returns whether a call may proceed. While open, counts the rejection
  /// and — once the cooldown is spent — transitions to half-open, admitting
  /// exactly one probe call. `now_ns` timestamps any resulting transition.
  bool Admit(int64_t now_ns = 0);

  /// Reports a successful (or partially successful) attempt: closes the
  /// breaker and zeroes the consecutive-failure count. `now_ns` timestamps
  /// any resulting transition.
  void RecordSuccess(int64_t now_ns = 0);

  /// Reports a failed attempt: bumps the consecutive-failure count and opens
  /// the breaker at the threshold (a half-open probe failure re-opens
  /// immediately). `now_ns` timestamps any resulting transition.
  void RecordFailure(int64_t now_ns = 0);

  /// Current state (for tests/diagnostics).
  State state() const;

  /// The state changes recorded so far, in order (capped at an internal
  /// limit — a breaker thrashing thousands of times is a diagnosis in
  /// itself; the earliest transitions are the ones kept).
  std::vector<Transition> transitions() const;

 private:
  /// Moves to `next` under the held mutex, recording the transition (and its
  /// registry mirrors) when the state actually changes.
  void TransitionTo(State next, int64_t now_ns);

  const int failure_threshold_;
  const int64_t cooldown_calls_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int64_t rejected_since_open_ = 0;
  /// Transition log (guarded by mutex_; see transitions()).
  std::vector<Transition> transitions_;
};

/// Counters of a RetryingOracle's recovery activity (see
/// RetryingOracle::stats()).
struct RetryStats {
  int64_t attempts = 0;           ///< Inner TryLabelBatch attempts issued.
  int64_t retries = 0;            ///< Attempts beyond each call's first.
  int64_t give_ups = 0;           ///< Calls that exhausted policy or deadline.
  int64_t breaker_fast_fails = 0; ///< Calls rejected by the open breaker.
  int64_t backoff_ns = 0;         ///< Simulated nanoseconds spent backing off.
  int64_t items_recovered = 0;    ///< Items resolved only by a retry.
  /// Breaker state changes in order, timestamped on the stack's simulated
  /// clock (see CircuitBreaker::Transition).
  std::vector<CircuitBreaker::Transition> breaker_transitions;
};

/// Decorator that makes a fallible oracle stack reliable-until-give-up:
/// failed or partial TryLabelBatch attempts are retried with exponential
/// backoff (re-requesting ONLY the still-unresolved items), guarded by
/// per-attempt/overall deadlines and a circuit breaker. Compose it outermost
/// — over RemoteOracle over FaultInjectingOracle — so retried trips are
/// re-priced by the latency model and backoff time lands on the same
/// simulated clock (ChargeAuxiliaryLatencyNs).
///
/// Because retries only ever re-request missing items and resolved labels
/// are delegated verbatim, a run whose faults are all transient produces
/// bit-identical labels — and, through LabelCache's exact accounting,
/// bit-identical error curves — to a fault-free run (tested).
///
/// Thread-safety: shareable like any Oracle (atomic counters, mutex-guarded
/// breaker); the backoff jitter sequence is deterministic per instance under
/// a single caller (see RetryPolicy::jitter_fraction).
class RetryingOracle : public Oracle {
 public:
  /// Wraps `inner` (non-null, must outlive this decorator) under `policy`
  /// (validated: max_attempts >= 1, multiplier >= 1, non-negative times,
  /// jitter in [0, 1)). The stack below `inner` is walked for a RemoteOracle
  /// to charge backoff time into.
  RetryingOracle(const Oracle* inner, const RetryPolicy& policy);

  /// Delegates to the inner oracle's infallible Label (no retry semantics —
  /// the infallible path cannot fail).
  bool Label(int64_t item, Rng& rng) const override;

  /// Delegates to the inner oracle's infallible LabelBatch (see Label).
  void LabelBatch(std::span<const int64_t> items, Rng& rng,
                  std::span<uint8_t> out) const override;

  /// The retry loop described on the class. Returns OK with everything
  /// resolved, or the final failure (kUnavailable / kDeadlineExceeded /
  /// whatever the stack reported) with every resolved label still valid in
  /// `out` — the caller may commit the partial progress.
  Status TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override;

  /// The inner oracle's true probability (reliability wrapping changes
  /// availability, not ground truth).
  double TrueProbability(int64_t item) const override;

  /// Forwards the inner oracle's determinism.
  bool deterministic() const override;

  /// Forwards the inner oracle's RNG discipline (retry decisions never touch
  /// the caller's RNG).
  bool labelling_consumes_rng() const override;

  /// Forwards the inner oracle's fallibility: retrying an infallible stack
  /// is a no-op decorator.
  bool fallible() const override;

  /// The inner oracle's item count.
  int64_t num_items() const override;

  /// The wrapped oracle (used by stack-walking helpers, e.g.
  /// FindRemoteOracle).
  const Oracle& inner() const { return *inner_; }

  /// The policy in force.
  const RetryPolicy& policy() const { return policy_; }

  /// The breaker (for tests/diagnostics of its state machine).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Snapshot of the recovery counters so far (per-counter atomic).
  RetryStats stats() const;

 private:
  /// Simulated backoff before retry number `retry_number` (1-based), with
  /// the policy's cap and deterministic jitter applied.
  int64_t BackoffNs(int retry_number) const;

  const Oracle* inner_;
  RetryPolicy policy_;
  /// The RemoteOracle discovered beneath (nullptr when the stack has none):
  /// attempt latencies are measured against — and backoff charged into —
  /// its simulated clock.
  const RemoteOracle* clock_;
  mutable CircuitBreaker breaker_;
  mutable std::atomic<int64_t> attempts_{0};
  mutable std::atomic<int64_t> retries_{0};
  mutable std::atomic<int64_t> give_ups_{0};
  mutable std::atomic<int64_t> breaker_fast_fails_{0};
  mutable std::atomic<int64_t> backoff_ns_{0};
  mutable std::atomic<int64_t> items_recovered_{0};
  mutable std::atomic<uint64_t> backoff_draws_{0};
};

/// Walks a decorator stack (RetryingOracle / FaultInjectingOracle layers)
/// down to the first RemoteOracle, or nullptr when the stack has none. This
/// is how latency/cost accounting stays discoverable — e.g. by RunTrajectory
/// — when the remote oracle is wrapped rather than outermost.
const RemoteOracle* FindRemoteOracle(const Oracle* oracle);

}  // namespace oasis

#endif  // OASIS_ORACLE_RETRY_POLICY_H_
