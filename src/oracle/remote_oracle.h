#ifndef OASIS_ORACLE_REMOTE_ORACLE_H_
#define OASIS_ORACLE_REMOTE_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "oracle/oracle.h"
#include "oracle/shared_label_store.h"

namespace oasis {

/// Latency/cost model of a remote labelling service (a crowdsourcing
/// platform, an expert-review queue, a paid labelling API). All times are
/// *simulated* — nothing sleeps unless `realize_latency` is set — so
/// experiments can price label-acquisition strategies without waiting for
/// them.
struct RemoteOracleOptions {
  /// Fixed latency charged per round trip, independent of batch size: task
  /// posting, network, annotator pickup (seconds).
  double round_trip_seconds = 30.0;

  /// Marginal latency per item in a round trip: one annotator judging one
  /// pair (seconds).
  double per_item_seconds = 12.0;

  /// Monetary cost per label sent over the wire (same currency the caller
  /// thinks in; labels replayed from a cache or shared store are free).
  double cost_per_label = 0.05;

  /// Multiplicative round-trip jitter: each trip's latency is scaled by
  /// (1 + jitter_fraction * u) with u ~ U[0, 1) drawn from an `Rng::Fork`
  /// stream keyed on (jitter_seed, fingerprint of the trip's items). Keying
  /// on trip *content* rather than a call counter makes the jitter — and
  /// hence every simulated clock — a pure function of what was queried,
  /// bit-identical at any thread count. Must lie in [0, 1).
  double jitter_fraction = 0.0;

  /// Seed of the jitter streams (see jitter_fraction).
  uint64_t jitter_seed = 0x0a515cafeULL;

  /// Largest number of items one round trip may carry (a crowd platform's
  /// task-page size); a larger batch is split into ceil(n / max) trips.
  /// 0 means unbounded (every LabelBatch call is one trip).
  int64_t max_items_per_round_trip = 0;

  /// When true, Label/LabelBatch really block for the simulated latency
  /// (scaled by realize_scale) — for demos and wall-clock experiments with
  /// the async pipeline. Never enable in unit tests or benches that loop.
  bool realize_latency = false;

  /// Scale applied to realized sleeps (e.g. 1e-4 turns a 30 s simulated trip
  /// into a 3 ms real one). Ignored unless realize_latency.
  double realize_scale = 1.0;
};

/// Point-in-time snapshot of a RemoteOracle's accounting (see
/// RemoteOracle::stats()).
struct RemoteOracleStats {
  /// Items requested of the remote service (cache hits in a front-end
  /// LabelCache never reach it; store hits do, but are answered locally).
  int64_t queries = 0;

  /// Simulated round trips actually sent over the wire.
  int64_t round_trips = 0;

  /// Items sent over the wire (= queries minus store hits).
  int64_t labels_fetched = 0;

  /// Queries answered by the SharedLabelStore instead of the wire.
  int64_t store_hits = 0;

  /// Total simulated latency, in integer nanoseconds. Integer so that
  /// concurrent accumulation is an order-independent sum — totals are
  /// bit-identical at any thread count (see docs/ORACLES.md).
  int64_t simulated_latency_ns = 0;

  /// Total simulated latency in seconds.
  double simulated_seconds() const {
    return static_cast<double>(simulated_latency_ns) * 1e-9;
  }

  /// Total monetary cost (labels_fetched * cost_per_label).
  double label_cost = 0.0;
};

/// Decorator that turns any local `Oracle` into a simulated *remote* one:
/// labels are delegated verbatim to the wrapped oracle (same values, same RNG
/// stream — a RemoteOracle-wrapped run is bit-identical to an unwrapped one),
/// while every query is priced under a deterministic latency/cost model and
/// accounted per round trip.
///
/// This is the repo's model of the paper's core premise — oracle labels are
/// the scarce resource (Definition 4; Sec. 1) — made quantitative: with it,
/// `LabelCache::QueryBatch`'s one-round-trip-per-miss-batch contract and the
/// samplers' batched `StepBatch` fast paths have something real to amortise,
/// and error curves can be plotted against simulated hours and dollars
/// instead of bare label counts (see experiments::RunnerOptions::remote_oracle).
///
/// Accounting model, per `LabelBatch` call of n items (a single `Label` call
/// is a batch of one):
///  - the call is split into ceil(n / max_items_per_round_trip) round trips;
///  - each trip of k items costs
///      (round_trip_seconds + k * per_item_seconds) * (1 + jitter)
///    of simulated latency, quantised to integer nanoseconds;
///  - each item on the wire costs cost_per_label.
/// With a SharedLabelStore attached (and a deterministic, RNG-free inner
/// oracle), items some caller already fetched are answered from the store:
/// zero trips, zero latency, zero cost; a call answered entirely by the
/// store does not touch the wire at all.
///
/// Thread-safety and determinism: labelling is const and all counters are
/// atomic integers, so one RemoteOracle may be shared across worker threads
/// exactly like any other Oracle. Without a store every stat is bit-identical
/// at any thread count (per-caller call sequences are deterministic, jitter
/// is keyed on trip content, and integer sums are order-independent); with a
/// store, labels / labels_fetched / label_cost stay scheduling-independent
/// but round-trip clustering does not — see SharedLabelStore.
class RemoteOracle : public Oracle {
 public:
  /// Wraps `inner` (which must outlive this oracle and be non-null). `store`
  /// may be null; it is engaged only when the inner oracle is deterministic
  /// and RNG-free (label replay is unsound otherwise), and must cover
  /// inner->num_items(). Checks option validity (non-negative latencies and
  /// cost, jitter_fraction in [0, 1)).
  RemoteOracle(const Oracle* inner, const RemoteOracleOptions& options,
               SharedLabelStore* store = nullptr);

  /// Delegates to the wrapped oracle's Label and accounts one round trip of
  /// one item (zero-cost when the shared store already has it).
  bool Label(int64_t item, Rng& rng) const override;

  /// Delegates to the wrapped oracle's LabelBatch (RNG consumed in item
  /// order, exactly as the inner oracle would) and accounts the batch per
  /// the model above.
  void LabelBatch(std::span<const int64_t> items, Rng& rng,
                  std::span<uint8_t> out) const override;

  /// Fallible path: with an infallible inner oracle this is the LabelBatch
  /// accounting with everything resolved; with a fallible inner (e.g. a
  /// FaultInjectingOracle underneath) the batch is paged into round trips
  /// and each trip's TryLabelBatch is delegated separately — every attempted
  /// trip is charged its full latency whether or not it succeeds (the wire
  /// time is spent either way), while label_cost is charged only for items
  /// actually delivered. A failing trip stops the call; later pages are left
  /// unresolved and uncharged.
  Status TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override;

  /// Forwards the wrapped oracle's fallibility: a RemoteOracle over a
  /// fault-injecting inner is itself fallible (and the shared store is
  /// disabled — replaying possibly-failed fetches is unsound).
  bool fallible() const override;

  /// Charges `ns` of simulated latency that did NOT come from a round trip —
  /// a retrying caller's backoff waits, so cost-vs-error curves price the
  /// time lost to failures, not just the trips (see RetryingOracle).
  void ChargeAuxiliaryLatencyNs(int64_t ns) const;

  /// The wrapped oracle's true probability (the decorator changes cost, not
  /// ground truth).
  double TrueProbability(int64_t item) const override;

  /// Forwards the wrapped oracle's determinism, so LabelCache's footnote-5
  /// charging policy is unchanged by wrapping.
  bool deterministic() const override;

  /// Forwards the wrapped oracle's RNG discipline, so the samplers' batched
  /// fast paths (and the async pipeline's soundness gate) are unchanged by
  /// wrapping.
  bool labelling_consumes_rng() const override;

  /// The wrapped oracle's item count.
  int64_t num_items() const override;

  /// Snapshot of the cost accounting so far. Safe to call concurrently with
  /// labelling; the snapshot is per-counter atomic (not a consistent cut
  /// across counters, which only matters mid-flight).
  RemoteOracleStats stats() const;

  /// The latency/cost model in force.
  const RemoteOracleOptions& options() const { return options_; }

  /// The wrapped oracle.
  const Oracle& inner() const { return *inner_; }

  /// Whether the shared store is engaged (attached AND sound for the inner
  /// oracle).
  bool sharing_labels() const { return store_ != nullptr; }

  /// Simulated latency of one round trip carrying `trip` (exposed so tests
  /// and harnesses can predict clocks exactly): base latency scaled by the
  /// content-keyed jitter, quantised to nanoseconds.
  int64_t TripLatencyNs(std::span<const int64_t> trip) const;

 private:
  /// Accounts the wire activity of fetching `fetched` in
  /// max_items_per_round_trip-sized trips; returns the simulated latency it
  /// added (the caller realizes it, outside any store lock).
  int64_t AccountFetch(std::span<const int64_t> fetched) const;

  /// Sleeps for the scaled latency when realize_latency is on. Must never be
  /// called while holding the SharedLabelStore's lock.
  void MaybeRealize(int64_t latency_ns) const;

  const Oracle* inner_;
  RemoteOracleOptions options_;
  SharedLabelStore* store_;
  mutable std::atomic<int64_t> queries_{0};
  mutable std::atomic<int64_t> round_trips_{0};
  mutable std::atomic<int64_t> labels_fetched_{0};
  mutable std::atomic<int64_t> store_hits_{0};
  mutable std::atomic<int64_t> simulated_latency_ns_{0};
};

}  // namespace oasis

#endif  // OASIS_ORACLE_REMOTE_ORACLE_H_
