#ifndef OASIS_ORACLE_ORACLE_H_
#define OASIS_ORACLE_ORACLE_H_

#include <cstdint>
#include <span>

#include "common/random.h"
#include "common/status.h"

/// \namespace oasis
/// Root namespace of the OASIS reproduction: samplers, oracles, strata,
/// estimators and the supporting infrastructure.
namespace oasis {

/// Randomised labelling oracle (Definition 4 of the paper).
///
/// A query for pool item z returns one draw from Bernoulli(p(1|z)), where
/// p(1|z) is the oracle probability of item z being a match. A deterministic
/// oracle has p(1|z) in {0, 1} (the regime of the paper's experiments); a
/// noisy oracle models crowdsourced annotators.
///
/// Labelling is const: all randomness comes from the caller's RNG and all
/// oracle state is immutable after construction. This is what lets the
/// parallel experiment runner share ONE oracle instance across worker
/// threads without synchronisation — implementations must keep Label() free
/// of mutable members (add per-call state to the caller's Rng instead).
class Oracle {
 public:
  virtual ~Oracle() = default;  ///< Oracles are deleted via the interface.

  /// Draws one label for pool item `item` using the caller's RNG, so that the
  /// complete experiment is reproducible from a single seed. Thread-safe for
  /// concurrent callers with distinct RNGs.
  virtual bool Label(int64_t item, Rng& rng) const = 0;

  /// Draws labels for a batch of items in one round-trip. Exactly equivalent
  /// to calling Label() once per item in `items` order — in particular the
  /// RNG is consumed in the same sequence, so a batched caller stays on the
  /// same seeded stream as a sequential one. `out` must have items.size()
  /// entries; each receives 0 or 1. The base implementation loops over
  /// Label(); concrete oracles override it to amortise the per-item virtual
  /// dispatch (and, for remote/crowd oracles, the round-trip itself).
  virtual void LabelBatch(std::span<const int64_t> items, Rng& rng,
                          std::span<uint8_t> out) const;

  /// True oracle probability p(1|item). Exposed for constructing ground-truth
  /// reference values in benches/tests; estimators never call this.
  virtual double TrueProbability(int64_t item) const = 0;

  /// Whether p(1|z) is degenerate ({0,1}) for every item. Deterministic
  /// oracles admit label caching (paper footnote 5: a pair is charged to the
  /// budget only the first time).
  virtual bool deterministic() const = 0;

  /// Whether Label()/LabelBatch() draw from the caller's RNG. True for any
  /// oracle that realises labels by sampling (NoisyOracle always burns one
  /// deviate per label, even when its probabilities are degenerate); false
  /// only when labelling is a pure lookup (GroundTruthOracle). Samplers use
  /// this — not deterministic() — to decide whether pre-drawing a batch of
  /// items and querying them afterwards preserves the exact sequential RNG
  /// stream. The conservative default is true.
  virtual bool labelling_consumes_rng() const { return true; }

  /// Whether labelling can FAIL (timeouts, outages, dropped items). False for
  /// every in-process oracle; decorators that model failure — FaultInjecting-
  /// Oracle, RetryingOracle, and RemoteOracle over a fallible inner — return
  /// true, which routes LabelCache through the fallible TryLabelBatch() path
  /// below instead of the infallible LabelBatch(). See docs/FAULT_MODEL.md.
  virtual bool fallible() const { return false; }

  /// Fallible batched labelling. On return, resolved[i] != 0 iff out[i] holds
  /// a valid label for items[i]; every entry of `resolved` is written (0 or
  /// 1). A non-OK status reports why the attempt stopped — entries resolved
  /// before the failure are still valid and MAY be committed by the caller
  /// (this is what lets a retrying caller re-request only the missing items
  /// of a partial batch). An OK status with unresolved entries is a *partial
  /// batch* (e.g. a crowd platform returning a subset); the caller decides
  /// whether to re-request the rest. `items`, `out` and `resolved` must have
  /// equal lengths. The base implementation delegates to the infallible
  /// LabelBatch() and resolves everything — correct for every oracle with
  /// fallible() == false.
  virtual Status TryLabelBatch(std::span<const int64_t> items, Rng& rng,
                               std::span<uint8_t> out,
                               std::span<uint8_t> resolved) const;

  /// Number of items the oracle covers.
  virtual int64_t num_items() const = 0;
};

}  // namespace oasis

#endif  // OASIS_ORACLE_ORACLE_H_
