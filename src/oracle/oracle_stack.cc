#include "oracle/oracle_stack.h"

#include "common/random.h"

namespace oasis {

OracleStackBuilder& OracleStackBuilder::FaultInjection(
    const FaultInjectionOptions& options) {
  spec_.fault_injection = options;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::Remote(
    const RemoteOracleOptions& options) {
  spec_.remote = options;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::Retry(const RetryPolicy& policy) {
  spec_.retry = policy;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::ShareLabels(SharedLabelStore* store) {
  store_ = store;
  spec_.share_labels = store != nullptr;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::ForkSeeds(uint64_t stream) {
  fork_stream_ = stream;
  return *this;
}

Result<OracleStack> OracleStackBuilder::Build(const Oracle* base) const {
  if (base == nullptr) {
    return Status::InvalidArgument("OracleStackBuilder: base oracle is null");
  }
  if (spec_.share_labels && !spec_.remote.has_value()) {
    return Status::InvalidArgument(
        "OracleStackBuilder: ShareLabels without a Remote layer (there is no "
        "wire to share)");
  }
  OracleStack stack;
  stack.spec_ = spec_;
  stack.top_ = base;
  if (stack.spec_.fault_injection.has_value()) {
    if (fork_stream_.has_value()) {
      // Decorrelate fault schedules across sibling stacks while keeping each
      // one a pure function of (options, stream index) — the experiment
      // runner's historical per-repeat arrangement, preserved bit for bit.
      stack.spec_.fault_injection->seed =
          Rng::Fork(stack.spec_.fault_injection->seed, *fork_stream_)
              .NextUint64();
    }
    stack.faulty_ = std::make_unique<FaultInjectingOracle>(
        stack.top_, *stack.spec_.fault_injection);
    stack.top_ = stack.faulty_.get();
  }
  if (stack.spec_.remote.has_value()) {
    if (fork_stream_.has_value()) {
      // Same decorrelation for the latency jitter: identical trip contents in
      // two sibling stacks should not draw identical service times.
      stack.spec_.remote->jitter_seed =
          Rng::Fork(stack.spec_.remote->jitter_seed, *fork_stream_)
              .NextUint64();
    }
    stack.remote_ = std::make_unique<RemoteOracle>(
        stack.top_, *stack.spec_.remote,
        stack.spec_.share_labels ? store_ : nullptr);
    stack.top_ = stack.remote_.get();
  }
  if (stack.spec_.retry.has_value()) {
    stack.retrying_ =
        std::make_unique<RetryingOracle>(stack.top_, *stack.spec_.retry);
    stack.top_ = stack.retrying_.get();
  }
  return stack;
}

}  // namespace oasis
