#include "oracle/ground_truth_oracle.h"

#include <utility>

#include "common/logging.h"

namespace oasis {

GroundTruthOracle::GroundTruthOracle(std::vector<uint8_t> truth)
    : truth_(std::move(truth)) {
  for (uint8_t t : truth_) {
    if (t != 0) ++num_positives_;
  }
}

bool GroundTruthOracle::Label(int64_t item, Rng& rng) const {
  (void)rng;  // Deterministic: the RNG is part of the Oracle contract only.
  OASIS_DCHECK(item >= 0 && item < num_items());
  return truth_[static_cast<size_t>(item)] != 0;
}

void GroundTruthOracle::LabelBatch(std::span<const int64_t> items, Rng& rng,
                                   std::span<uint8_t> out) const {
  (void)rng;  // Deterministic: the RNG is part of the Oracle contract only.
  OASIS_DCHECK(items.size() == out.size());
  const uint8_t* truth = truth_.data();
  for (size_t i = 0; i < items.size(); ++i) {
    OASIS_DCHECK(items[i] >= 0 && items[i] < num_items());
    out[i] = truth[static_cast<size_t>(items[i])] != 0 ? 1 : 0;
  }
}

double GroundTruthOracle::TrueProbability(int64_t item) const {
  OASIS_DCHECK(item >= 0 && item < num_items());
  return truth_[static_cast<size_t>(item)] != 0 ? 1.0 : 0.0;
}

}  // namespace oasis
