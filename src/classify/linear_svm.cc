#include "classify/linear_svm.h"

#include <cmath>

#include "common/logging.h"

namespace oasis {
namespace classify {

LinearSvm::LinearSvm(LinearSvmOptions options) : options_(options) {}

Status LinearSvm::Fit(const Dataset& data, Rng& rng) {
  if (data.empty()) return Status::InvalidArgument("LinearSvm: empty dataset");
  if (data.num_positives() == 0 || data.num_negatives() == 0) {
    return Status::InvalidArgument("LinearSvm: needs both classes to train");
  }
  if (!(options_.lambda > 0.0)) {
    return Status::InvalidArgument("LinearSvm: lambda must be positive");
  }

  const size_t d = data.num_features();
  const size_t n = data.size();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  // Pegasos: at step t pick a random example, step size 1/(lambda t);
  // sub-gradient of the hinge loss plus L2 shrinkage, then projection onto
  // the 1/sqrt(lambda) ball. The bias is treated as the weight of an
  // implicit constant feature and takes part in shrinkage and projection:
  // leaving it unregularised lets the 1/(lambda t) early steps (1/lambda at
  // t=1) fling it arbitrarily far, making independently trained models
  // score-incomparable — which breaks cross-validated calibration.
  size_t t = 0;
  const size_t total_steps = options_.epochs * n;
  for (size_t step = 0; step < total_steps; ++step) {
    ++t;
    const size_t i = static_cast<size_t>(rng.NextBounded(n));
    const double y = data.label(i) ? 1.0 : -1.0;
    std::span<const double> x = data.row(i);

    double margin = bias_;
    for (size_t f = 0; f < d; ++f) margin += weights_[f] * x[f];
    const double eta = 1.0 / (options_.lambda * static_cast<double>(t));

    const double shrink = 1.0 - eta * options_.lambda;
    for (size_t f = 0; f < d; ++f) weights_[f] *= shrink;
    bias_ *= shrink;
    if (y * margin < 1.0) {
      for (size_t f = 0; f < d; ++f) weights_[f] += eta * y * x[f];
      bias_ += eta * y;
    }

    double norm_sq = bias_ * bias_;
    for (double w : weights_) norm_sq += w * w;
    const double radius = 1.0 / std::sqrt(options_.lambda);
    if (norm_sq > radius * radius) {
      const double scale = radius / std::sqrt(norm_sq);
      for (double& w : weights_) w *= scale;
      bias_ *= scale;
    }
  }
  return Status::OK();
}

double LinearSvm::Score(std::span<const double> features) const {
  OASIS_DCHECK(features.size() == weights_.size());
  double margin = bias_;
  for (size_t f = 0; f < weights_.size(); ++f) margin += weights_[f] * features[f];
  return margin;
}

}  // namespace classify
}  // namespace oasis
