#include "classify/adaboost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace oasis {
namespace classify {

namespace {
double StumpPredict(double value, double threshold, double polarity) {
  return (value >= threshold ? 1.0 : -1.0) * polarity;
}
}  // namespace

AdaBoost::AdaBoost(AdaBoostOptions options) : options_(options) {}

Status AdaBoost::Fit(const Dataset& data, Rng& rng) {
  (void)rng;  // Threshold grid is deterministic; RNG kept for interface parity.
  if (data.empty()) return Status::InvalidArgument("AdaBoost: empty dataset");
  if (data.num_positives() == 0 || data.num_negatives() == 0) {
    return Status::InvalidArgument("AdaBoost: needs both classes to train");
  }
  if (options_.rounds == 0) {
    return Status::InvalidArgument("AdaBoost: rounds must be positive");
  }

  const size_t n = data.size();
  const size_t d = data.num_features();
  stumps_.clear();
  alpha_total_ = 0.0;

  // Candidate thresholds per feature: equally spaced quantile-ish cuts from
  // the sorted unique feature values.
  std::vector<std::vector<double>> candidates(d);
  for (size_t f = 0; f < d; ++f) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = data.row(i)[f];
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    const size_t m = std::min(options_.candidate_thresholds, values.size());
    for (size_t c = 0; c < m; ++c) {
      const size_t idx = (c * values.size()) / m;
      candidates[f].push_back(values[idx]);
    }
  }

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  for (size_t round = 0; round < options_.rounds; ++round) {
    Stump best;
    double best_error = std::numeric_limits<double>::infinity();
    for (size_t f = 0; f < d; ++f) {
      for (double threshold : candidates[f]) {
        // Weighted error of the +1-polarity stump; the -1 polarity has error
        // 1 - e, so one pass covers both.
        double error = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double y = data.label(i) ? 1.0 : -1.0;
          if (StumpPredict(data.row(i)[f], threshold, 1.0) != y) {
            error += weights[i];
          }
        }
        double polarity = 1.0;
        if (error > 0.5) {
          error = 1.0 - error;
          polarity = -1.0;
        }
        if (error < best_error) {
          best_error = error;
          best.feature = f;
          best.threshold = threshold;
          best.polarity = polarity;
        }
      }
    }

    best_error = std::clamp(best_error, 1e-10, 0.5);
    best.alpha = 0.5 * std::log((1.0 - best_error) / best_error);
    stumps_.push_back(best);
    alpha_total_ += best.alpha;

    // Reweight: mistakes up, hits down; renormalise.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double y = data.label(i) ? 1.0 : -1.0;
      const double h =
          StumpPredict(data.row(i)[best.feature], best.threshold, best.polarity);
      weights[i] *= std::exp(-best.alpha * y * h);
      total += weights[i];
    }
    OASIS_CHECK_GT(total, 0.0);
    for (double& w : weights) w /= total;

    if (best_error <= 1e-10) break;  // Perfect stump: boosting is done.
  }
  return Status::OK();
}

double AdaBoost::Score(std::span<const double> features) const {
  OASIS_DCHECK(!stumps_.empty());
  double margin = 0.0;
  for (const Stump& stump : stumps_) {
    margin += stump.alpha *
              StumpPredict(features[stump.feature], stump.threshold, stump.polarity);
  }
  return alpha_total_ > 0.0 ? margin / alpha_total_ : 0.0;
}

}  // namespace classify
}  // namespace oasis
