#ifndef OASIS_CLASSIFY_PLATT_H_
#define OASIS_CLASSIFY_PLATT_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "classify/classifier.h"
#include "common/status.h"

namespace oasis {
namespace classify {

/// Platt scaling: fits P(y=1|s) = sigmoid(A s + B) to (score, label) pairs by
/// regularised maximum likelihood (Newton iterations with the Platt/Lin
/// target smoothing). This is the mechanism behind LIBSVM's probability
/// outputs — the "calibrated scores" the paper compares in Sec. 6.3.2.
class PlattScaler {
 public:
  /// Fits A and B from raw scores and 0/1 labels. Requires both classes.
  Status Fit(std::span<const double> scores, std::span<const uint8_t> labels);

  /// Calibrated probability for a raw score.
  double Transform(double score) const;

  bool fitted() const { return fitted_; }
  double slope() const { return a_; }
  double intercept() const { return b_; }

  /// Positive rate of the data the sigmoid was fitted on.
  double train_positive_rate() const { return train_positive_rate_; }

 private:
  double a_ = -1.0;
  double b_ = 0.0;
  double train_positive_rate_ = 0.5;
  bool fitted_ = false;
};

/// Wraps a base classifier with cross-validated Platt calibration, mirroring
/// the costly LIBSVM "-b 1" training mode the paper used: the base model is
/// trained on k-1 folds and scored on the held-out fold to collect unbiased
/// (score, label) pairs, the sigmoid is fitted on those, and the base model
/// is finally retrained on all data.
///
/// The wrapped classifier reports probabilistic() = true and produces scores
/// in [0, 1] approximating the oracle probabilities.
class CalibratedClassifier : public Classifier {
 public:
  /// `factory` constructs a fresh base model per fold (and the final one).
  using Factory = std::function<std::unique_ptr<Classifier>()>;

  CalibratedClassifier(Factory factory, size_t folds = 5);

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return true; }
  std::string name() const override;

  /// Prior correction: when the deployment population's positive rate
  /// differs from the training sample's (the usual case in ER, where
  /// training subsamples are match-enriched while the pool is 1:1000+),
  /// Score() shifts the sigmoid by the log-odds ratio so probabilities are
  /// calibrated for the target population (the paper's Definition 3 is with
  /// respect to the evaluation pool). Pass a rate in (0, 1); call with a
  /// negative value to disable (default).
  void SetTargetPositiveRate(double rate) { target_positive_rate_ = rate; }
  double target_positive_rate() const { return target_positive_rate_; }

  const PlattScaler& scaler() const { return scaler_; }

 private:
  Factory factory_;
  size_t folds_;
  std::unique_ptr<Classifier> base_;
  PlattScaler scaler_;
  double target_positive_rate_ = -1.0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_PLATT_H_
