#ifndef OASIS_CLASSIFY_DATASET_H_
#define OASIS_CLASSIFY_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace classify {

/// Dense row-major labelled feature matrix used to train classifiers.
class Dataset {
 public:
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  /// Appends one (features, label) example; arity must match.
  Status Add(std::span<const double> features, bool label);

  size_t size() const { return labels_.size(); }
  size_t num_features() const { return num_features_; }
  bool empty() const { return labels_.empty(); }

  std::span<const double> row(size_t i) const {
    return {data_.data() + i * num_features_, num_features_};
  }
  bool label(size_t i) const { return labels_[i] != 0; }
  const std::vector<uint8_t>& labels() const { return labels_; }

  int64_t num_positives() const { return num_positives_; }
  int64_t num_negatives() const {
    return static_cast<int64_t>(size()) - num_positives_;
  }

  /// Splits example indices into `folds` contiguous chunks after a seeded
  /// shuffle — the cross-validation device behind Platt calibration.
  std::vector<std::vector<size_t>> FoldIndices(size_t folds, uint64_t seed) const;

  /// Subset restricted to the given row indices.
  Dataset Subset(std::span<const size_t> indices) const;

 private:
  size_t num_features_;
  std::vector<double> data_;
  std::vector<uint8_t> labels_;
  int64_t num_positives_ = 0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_DATASET_H_
