#include "classify/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "stats/transforms.h"

namespace oasis {
namespace classify {

Mlp::Mlp(MlpOptions options) : options_(options) {}

Status Mlp::Fit(const Dataset& data, Rng& rng) {
  if (data.empty()) return Status::InvalidArgument("Mlp: empty dataset");
  if (data.num_positives() == 0 || data.num_negatives() == 0) {
    return Status::InvalidArgument("Mlp: needs both classes to train");
  }
  if (options_.hidden_units == 0) {
    return Status::InvalidArgument("Mlp: hidden_units must be positive");
  }

  const size_t d = data.num_features();
  const size_t h = options_.hidden_units;
  const size_t n = data.size();
  input_dim_ = d;

  // Xavier-style init keeps tanh units in their responsive range.
  const double scale1 = std::sqrt(2.0 / static_cast<double>(d + h));
  const double scale2 = std::sqrt(2.0 / static_cast<double>(h + 1));
  w1_.resize(h * d);
  b1_.assign(h, 0.0);
  w2_.resize(h);
  b2_ = 0.0;
  for (double& w : w1_) w = rng.NextGaussian() * scale1;
  for (double& w : w2_) w = rng.NextGaussian() * scale2;

  std::vector<double> vw1(h * d, 0.0);
  std::vector<double> vb1(h, 0.0);
  std::vector<double> vw2(h, 0.0);
  double vb2 = 0.0;
  std::vector<double> hidden(h);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double lr =
        options_.learning_rate / std::sqrt(1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t step = 0; step < n; ++step) {
      const size_t i = static_cast<size_t>(rng.NextBounded(n));
      const double y = data.label(i) ? 1.0 : 0.0;
      std::span<const double> x = data.row(i);

      // Forward pass.
      for (size_t u = 0; u < h; ++u) {
        double z = b1_[u];
        const double* row = &w1_[u * d];
        for (size_t f = 0; f < d; ++f) z += row[f] * x[f];
        hidden[u] = std::tanh(z);
      }
      double z_out = b2_;
      for (size_t u = 0; u < h; ++u) z_out += w2_[u] * hidden[u];
      const double prob = Expit(z_out);

      // Backward pass (log-loss): d/dz_out = prob - y.
      const double delta_out = prob - y;
      for (size_t u = 0; u < h; ++u) {
        const double grad_w2 = delta_out * hidden[u] + options_.l2 * w2_[u];
        vw2[u] = options_.momentum * vw2[u] - lr * grad_w2;
        const double delta_h =
            delta_out * w2_[u] * (1.0 - hidden[u] * hidden[u]);
        double* row = &w1_[u * d];
        double* vrow = &vw1[u * d];
        for (size_t f = 0; f < d; ++f) {
          const double grad = delta_h * x[f] + options_.l2 * row[f];
          vrow[f] = options_.momentum * vrow[f] - lr * grad;
          row[f] += vrow[f];
        }
        vb1[u] = options_.momentum * vb1[u] - lr * delta_h;
        b1_[u] += vb1[u];
        w2_[u] += vw2[u];
      }
      vb2 = options_.momentum * vb2 - lr * delta_out;
      b2_ += vb2;
    }
  }
  return Status::OK();
}

double Mlp::Score(std::span<const double> features) const {
  OASIS_DCHECK(features.size() == input_dim_);
  const size_t h = w2_.size();
  double z_out = b2_;
  for (size_t u = 0; u < h; ++u) {
    double z = b1_[u];
    const double* row = &w1_[u * input_dim_];
    for (size_t f = 0; f < input_dim_; ++f) z += row[f] * features[f];
    z_out += w2_[u] * std::tanh(z);
  }
  return Expit(z_out);
}

}  // namespace classify
}  // namespace oasis
