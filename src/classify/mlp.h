#ifndef OASIS_CLASSIFY_MLP_H_
#define OASIS_CLASSIFY_MLP_H_

#include <vector>

#include "classify/classifier.h"

namespace oasis {
namespace classify {

/// Options for the one-hidden-layer perceptron.
struct MlpOptions {
  size_t hidden_units = 16;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  size_t epochs = 80;
  double momentum = 0.9;
};

/// Multi-layer perceptron with one tanh hidden layer and a sigmoid output,
/// trained by backpropagation with momentum SGD on log loss — the paper's
/// "NN" classifier (Sec. 6.3.4). Scores are probabilities.
class Mlp : public Classifier {
 public:
  explicit Mlp(MlpOptions options = {});

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return true; }
  std::string name() const override { return "NN"; }

 private:
  MlpOptions options_;
  size_t input_dim_ = 0;
  // Layer 1: hidden_units x input_dim weights + hidden biases.
  std::vector<double> w1_;
  std::vector<double> b1_;
  // Layer 2: output weights over hidden units + output bias.
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_MLP_H_
