#include "classify/scaler.h"

#include <cmath>

#include "common/logging.h"
#include "stats/running_stats.h"

namespace oasis {
namespace classify {

Status StandardScaler::Fit(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("StandardScaler: empty dataset");
  const size_t d = data.num_features();
  std::vector<RunningStats> stats(d);
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> row = data.row(i);
    for (size_t f = 0; f < d; ++f) stats[f].Add(row[f]);
  }
  means_.resize(d);
  stddevs_.resize(d);
  for (size_t f = 0; f < d; ++f) {
    means_[f] = stats[f].mean();
    const double sd = std::sqrt(stats[f].variance_population());
    stddevs_[f] = sd > 1e-12 ? sd : 1.0;  // Constant feature -> identity scale.
  }
  fitted_ = true;
  return Status::OK();
}

void StandardScaler::TransformInPlace(std::span<double> features) const {
  OASIS_DCHECK(fitted_);
  OASIS_DCHECK(features.size() == means_.size());
  for (size_t f = 0; f < features.size(); ++f) {
    features[f] = (features[f] - means_[f]) / stddevs_[f];
  }
}

Dataset StandardScaler::Transform(const Dataset& data) const {
  Dataset out(data.num_features());
  std::vector<double> row(data.num_features());
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> src = data.row(i);
    for (size_t f = 0; f < row.size(); ++f) row[f] = src[f];
    TransformInPlace(row);
    OASIS_CHECK_OK(out.Add(row, data.label(i)));
  }
  return out;
}

}  // namespace classify
}  // namespace oasis
