#ifndef OASIS_CLASSIFY_ADABOOST_H_
#define OASIS_CLASSIFY_ADABOOST_H_

#include <vector>

#include "classify/classifier.h"

namespace oasis {
namespace classify {

/// Options for AdaBoost over decision stumps.
struct AdaBoostOptions {
  /// Number of boosting rounds (weak learners).
  size_t rounds = 50;
  /// Candidate split thresholds examined per feature and round.
  size_t candidate_thresholds = 32;
};

/// Discrete AdaBoost with axis-aligned decision stumps — the paper's "AB"
/// classifier. Scores are the aggregated stump margin sum_t alpha_t h_t(x),
/// normalised by sum_t alpha_t to [-1, 1]; uncalibrated by construction.
class AdaBoost : public Classifier {
 public:
  explicit AdaBoost(AdaBoostOptions options = {});

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return false; }
  std::string name() const override { return "AB"; }

  size_t num_stumps() const { return stumps_.size(); }

 private:
  /// h(x) = polarity * sign(x[feature] - threshold), with sign(0) := +1.
  struct Stump {
    size_t feature = 0;
    double threshold = 0.0;
    double polarity = 1.0;
    double alpha = 0.0;
  };

  AdaBoostOptions options_;
  std::vector<Stump> stumps_;
  double alpha_total_ = 0.0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_ADABOOST_H_
