#ifndef OASIS_CLASSIFY_CLASSIFIER_H_
#define OASIS_CLASSIFY_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>

#include "classify/dataset.h"
#include "common/random.h"
#include "common/status.h"

namespace oasis {
namespace classify {

/// Binary classifier producing similarity scores (Definition 2 of the paper:
/// any confidence-valued output is a legitimate similarity score).
///
/// Score() returns a raw confidence: a signed margin for margin-based models
/// (threshold 0) or a probability for probabilistic models (threshold 0.5) —
/// probabilistic() and threshold() tell callers which regime applies, which
/// is exactly the calibrated/uncalibrated distinction of the paper's Sec. 6.3.2.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. The RNG drives any stochastic optimisation so
  /// training is reproducible.
  virtual Status Fit(const Dataset& data, Rng& rng) = 0;

  /// Confidence score for one feature vector; Fit must have succeeded.
  virtual double Score(std::span<const double> features) const = 0;

  /// Whether Score() is a probability in [0, 1].
  virtual bool probabilistic() const = 0;

  /// Decision threshold on the Score() scale (0 for margins, 0.5 for
  /// probabilities, unless a subclass shifts it).
  virtual double threshold() const { return probabilistic() ? 0.5 : 0.0; }

  /// Predicted label: Score >= threshold.
  bool Predict(std::span<const double> features) const {
    return Score(features) >= threshold();
  }

  virtual std::string name() const = 0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_CLASSIFIER_H_
