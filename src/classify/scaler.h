#ifndef OASIS_CLASSIFY_SCALER_H_
#define OASIS_CLASSIFY_SCALER_H_

#include <span>
#include <vector>

#include "classify/dataset.h"
#include "common/status.h"

namespace oasis {
namespace classify {

/// Per-feature standardisation (zero mean, unit variance) fitted on training
/// data and applied to anything scored later. Constant features map to 0.
class StandardScaler {
 public:
  /// Learns per-feature means and standard deviations.
  Status Fit(const Dataset& data);

  /// Transforms one feature vector in place.
  void TransformInPlace(std::span<double> features) const;

  /// Returns a standardised copy of the dataset.
  Dataset Transform(const Dataset& data) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
  bool fitted_ = false;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_SCALER_H_
