#ifndef OASIS_CLASSIFY_LINEAR_SVM_H_
#define OASIS_CLASSIFY_LINEAR_SVM_H_

#include <vector>

#include "classify/classifier.h"

namespace oasis {
namespace classify {

/// Options for the Pegasos linear SVM.
struct LinearSvmOptions {
  /// L2 regularisation strength lambda of the primal SVM objective.
  double lambda = 1e-4;
  /// Number of SGD passes over the training data.
  size_t epochs = 40;
  /// Shift applied to the decision threshold on the margin scale; positive
  /// values trade recall for precision. The dataset profiles use this to
  /// steer the operating point toward the paper's Table 2 values.
  double threshold_shift = 0.0;
};

/// Linear SVM trained with Pegasos (primal stochastic sub-gradient descent
/// with step 1/(lambda t) and projection). Scores are signed distances to
/// the decision hyperplane — the uncalibrated scores the paper evaluates in
/// Figures 2/3 (its "L-SVM").
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmOptions options = {});

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return false; }
  double threshold() const override { return options_.threshold_shift; }
  std::string name() const override { return "L-SVM"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LinearSvmOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_LINEAR_SVM_H_
