#include "classify/logistic_regression.h"

#include <cmath>

#include "common/logging.h"
#include "stats/transforms.h"

namespace oasis {
namespace classify {

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const Dataset& data, Rng& rng) {
  if (data.empty()) {
    return Status::InvalidArgument("LogisticRegression: empty dataset");
  }
  if (data.num_positives() == 0 || data.num_negatives() == 0) {
    return Status::InvalidArgument("LogisticRegression: needs both classes");
  }
  const size_t d = data.num_features();
  const size_t n = data.size();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // 1/sqrt decay keeps late epochs refining rather than oscillating.
    const double lr =
        options_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (size_t step = 0; step < n; ++step) {
      const size_t i = static_cast<size_t>(rng.NextBounded(n));
      const double y = data.label(i) ? 1.0 : 0.0;
      std::span<const double> x = data.row(i);
      double z = bias_;
      for (size_t f = 0; f < d; ++f) z += weights_[f] * x[f];
      const double error = Expit(z) - y;
      for (size_t f = 0; f < d; ++f) {
        weights_[f] -= lr * (error * x[f] + options_.l2 * weights_[f]);
      }
      bias_ -= lr * error;
    }
  }
  return Status::OK();
}

double LogisticRegression::Score(std::span<const double> features) const {
  OASIS_DCHECK(features.size() == weights_.size());
  double z = bias_;
  for (size_t f = 0; f < weights_.size(); ++f) z += weights_[f] * features[f];
  return Expit(z);
}

}  // namespace classify
}  // namespace oasis
