#include "classify/dataset.h"

#include "common/logging.h"
#include "common/random.h"

namespace oasis {
namespace classify {

Status Dataset::Add(std::span<const double> features, bool label) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument("Dataset: feature arity mismatch");
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label ? 1 : 0);
  if (label) ++num_positives_;
  return Status::OK();
}

std::vector<std::vector<size_t>> Dataset::FoldIndices(size_t folds,
                                                      uint64_t seed) const {
  OASIS_CHECK_GT(folds, 0u);
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < order.size(); ++i) {
    out[i % folds].push_back(order[i]);
  }
  return out;
}

Dataset Dataset::Subset(std::span<const size_t> indices) const {
  Dataset out(num_features_);
  for (size_t i : indices) {
    OASIS_CHECK_OK(out.Add(row(i), label(i)));
  }
  return out;
}

}  // namespace classify
}  // namespace oasis
