#include "classify/platt.h"

#include <cmath>

#include "common/logging.h"
#include "stats/transforms.h"

namespace oasis {
namespace classify {

Status PlattScaler::Fit(std::span<const double> scores,
                        std::span<const uint8_t> labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    return Status::InvalidArgument("PlattScaler: bad input sizes");
  }
  double prior1 = 0.0;
  for (uint8_t y : labels) prior1 += (y != 0) ? 1.0 : 0.0;
  const double prior0 = static_cast<double>(labels.size()) - prior1;
  if (prior1 == 0.0 || prior0 == 0.0) {
    return Status::InvalidArgument("PlattScaler: needs both classes");
  }

  // Platt's smoothed targets guard against overconfident sigmoids.
  const double hi_target = (prior1 + 1.0) / (prior1 + 2.0);
  const double lo_target = 1.0 / (prior0 + 2.0);

  // Newton's method with backtracking on the regularised log-likelihood,
  // following the numerically careful formulation of Lin, Lin & Weng (2007).
  double a = 0.0;
  double b = std::log((prior0 + 1.0) / (prior1 + 1.0));
  const double sigma = 1e-12;
  const size_t max_iter = 100;

  auto objective = [&](double aa, double bb) {
    double obj = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      const double target = labels[i] != 0 ? hi_target : lo_target;
      const double z = aa * scores[i] + bb;
      // log(1 + exp(-|z|)) form avoids overflow.
      if (z >= 0.0) {
        obj += target * z + std::log1p(std::exp(-z));
      } else {
        obj += (target - 1.0) * z + std::log1p(std::exp(z));
      }
    }
    return obj;
  };

  double current = objective(a, b);
  for (size_t iter = 0; iter < max_iter; ++iter) {
    double h11 = sigma, h22 = sigma, h21 = 0.0;
    double g1 = 0.0, g2 = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      const double target = labels[i] != 0 ? hi_target : lo_target;
      const double z = a * scores[i] + b;
      const double p = Expit(-z);        // = 1 - sigmoid(z)
      const double q = 1.0 - p;          // = sigmoid(z)
      const double w = p * q;
      h11 += scores[i] * scores[i] * w;
      h22 += w;
      h21 += scores[i] * w;
      const double diff = target - p;    // Lin et al. gradient convention.
      g1 += scores[i] * diff;
      g2 += diff;
    }
    if (std::abs(g1) < 1e-10 && std::abs(g2) < 1e-10) break;

    const double det = h11 * h22 - h21 * h21;
    const double da = -(h22 * g1 - h21 * g2) / det;
    const double db = -(-h21 * g1 + h11 * g2) / det;
    const double grad_dot_step = g1 * da + g2 * db;

    double step = 1.0;
    bool improved = false;
    while (step >= 1e-10) {
      const double na = a + step * da;
      const double nb = b + step * db;
      const double next = objective(na, nb);
      if (next < current + 1e-4 * step * grad_dot_step) {
        a = na;
        b = nb;
        current = next;
        improved = true;
        break;
      }
      step /= 2.0;
    }
    if (!improved) break;  // Line search failed: converged numerically.
  }

  a_ = a;
  b_ = b;
  train_positive_rate_ = prior1 / (prior1 + prior0);
  fitted_ = true;
  return Status::OK();
}

double PlattScaler::Transform(double score) const {
  OASIS_DCHECK(fitted_);
  // P(y=1|s) = 1 / (1 + exp(a s + b)) in Platt's parametrisation, where the
  // fitted model above is for P(y=0); equivalently sigmoid(-(a s + b)).
  return Expit(-(a_ * score + b_));
}

CalibratedClassifier::CalibratedClassifier(Factory factory, size_t folds)
    : factory_(factory), folds_(folds) {
  OASIS_CHECK(factory != nullptr);
  OASIS_CHECK_GE(folds, 2u);
}

Status CalibratedClassifier::Fit(const Dataset& data, Rng& rng) {
  if (data.empty()) {
    return Status::InvalidArgument("CalibratedClassifier: empty dataset");
  }
  // Out-of-fold scores: train on k-1 folds, score the held-out fold.
  std::vector<double> oof_scores;
  std::vector<uint8_t> oof_labels;
  oof_scores.reserve(data.size());
  oof_labels.reserve(data.size());
  const std::vector<std::vector<size_t>> folds =
      data.FoldIndices(folds_, rng.NextUint64());
  for (size_t held_out = 0; held_out < folds.size(); ++held_out) {
    std::vector<size_t> train_rows;
    for (size_t f = 0; f < folds.size(); ++f) {
      if (f == held_out) continue;
      train_rows.insert(train_rows.end(), folds[f].begin(), folds[f].end());
    }
    if (train_rows.empty() || folds[held_out].empty()) continue;
    Dataset train = data.Subset(train_rows);
    if (train.num_positives() == 0 || train.num_negatives() == 0) {
      continue;  // Degenerate fold under extreme imbalance: skip.
    }
    std::unique_ptr<Classifier> model = factory_();
    Rng fold_rng = rng.Split();
    OASIS_RETURN_NOT_OK(model->Fit(train, fold_rng));
    for (size_t i : folds[held_out]) {
      oof_scores.push_back(model->Score(data.row(i)));
      oof_labels.push_back(data.label(i) ? 1 : 0);
    }
  }
  if (oof_scores.empty()) {
    return Status::FailedPrecondition(
        "CalibratedClassifier: no usable cross-validation folds");
  }
  OASIS_RETURN_NOT_OK(scaler_.Fit(oof_scores, oof_labels));

  // Final base model on all data.
  base_ = factory_();
  Rng final_rng = rng.Split();
  return base_->Fit(data, final_rng);
}

double CalibratedClassifier::Score(std::span<const double> features) const {
  OASIS_DCHECK(base_ != nullptr);
  const double p = scaler_.Transform(base_->Score(features));
  if (target_positive_rate_ <= 0.0 || target_positive_rate_ >= 1.0) return p;
  // Saerens-style prior correction on the logit scale: shift by the log of
  // the target-to-train odds ratio.
  const double train_rate = scaler_.train_positive_rate();
  const double shift = std::log(target_positive_rate_ / (1.0 - target_positive_rate_)) -
                       std::log(train_rate / (1.0 - train_rate));
  return Expit(Logit(p) + shift);
}

std::string CalibratedClassifier::name() const {
  return base_ != nullptr ? base_->name() + "+Platt" : "Calibrated";
}

}  // namespace classify
}  // namespace oasis
