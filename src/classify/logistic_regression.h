#ifndef OASIS_CLASSIFY_LOGISTIC_REGRESSION_H_
#define OASIS_CLASSIFY_LOGISTIC_REGRESSION_H_

#include <vector>

#include "classify/classifier.h"

namespace oasis {
namespace classify {

/// Options for SGD logistic regression.
struct LogisticRegressionOptions {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  size_t epochs = 60;
};

/// Logistic regression trained with mini-batchless SGD. Scores are
/// probabilities (inherently calibrated up to model fit), the probabilistic
/// counterpart to the SVM margin scores.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return true; }
  std::string name() const override { return "LR"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_LOGISTIC_REGRESSION_H_
