#include "classify/rbf_svm.h"

#include <cmath>

#include "common/logging.h"

namespace oasis {
namespace classify {

RbfSvm::RbfSvm(RbfSvmOptions options) : options_(options) {}

double RbfSvm::Kernel(std::span<const double> a, std::span<const double> b) const {
  double dist_sq = 0.0;
  for (size_t f = 0; f < a.size(); ++f) {
    const double diff = a[f] - b[f];
    dist_sq += diff * diff;
  }
  return std::exp(-options_.gamma * dist_sq);
}

Status RbfSvm::Fit(const Dataset& data, Rng& rng) {
  if (data.empty()) return Status::InvalidArgument("RbfSvm: empty dataset");
  if (data.num_positives() == 0 || data.num_negatives() == 0) {
    return Status::InvalidArgument("RbfSvm: needs both classes to train");
  }
  if (!(options_.lambda > 0.0) || !(options_.gamma > 0.0)) {
    return Status::InvalidArgument("RbfSvm: lambda and gamma must be positive");
  }

  const size_t n = data.size();
  const size_t d = data.num_features();
  input_dim_ = d;

  // Kernelised Pegasos: alpha_i counts how often example i was selected
  // while misclassified under the current implicit weight vector
  //   w_t = (1 / (lambda t)) * sum_i alpha_i y_i phi(x_i).
  std::vector<int64_t> alpha(n, 0);
  size_t t = 0;
  for (size_t step = 0; step < options_.steps; ++step) {
    ++t;
    const size_t i = static_cast<size_t>(rng.NextBounded(n));
    const double y = data.label(i) ? 1.0 : -1.0;
    double decision = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (alpha[j] == 0) continue;
      const double yj = data.label(j) ? 1.0 : -1.0;
      decision += static_cast<double>(alpha[j]) * yj * Kernel(data.row(j), data.row(i));
    }
    decision /= options_.lambda * static_cast<double>(t);
    if (y * decision < 1.0) ++alpha[i];
  }

  // Freeze the support set: only examples with alpha > 0 matter at test time.
  support_.clear();
  coeffs_.clear();
  const double scale = 1.0 / (options_.lambda * static_cast<double>(t));
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] == 0) continue;
    std::span<const double> row = data.row(i);
    support_.insert(support_.end(), row.begin(), row.end());
    const double y = data.label(i) ? 1.0 : -1.0;
    coeffs_.push_back(static_cast<double>(alpha[i]) * y * scale);
  }
  if (coeffs_.empty()) {
    return Status::Internal("RbfSvm: training produced an empty support set");
  }
  return Status::OK();
}

double RbfSvm::Score(std::span<const double> features) const {
  OASIS_DCHECK(features.size() == input_dim_);
  OASIS_DCHECK(!coeffs_.empty());
  double decision = 0.0;
  for (size_t s = 0; s < coeffs_.size(); ++s) {
    std::span<const double> sv(&support_[s * input_dim_], input_dim_);
    decision += coeffs_[s] * Kernel(sv, features);
  }
  return decision;
}

size_t RbfSvm::num_support_vectors() const { return coeffs_.size(); }

}  // namespace classify
}  // namespace oasis
