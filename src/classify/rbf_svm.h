#ifndef OASIS_CLASSIFY_RBF_SVM_H_
#define OASIS_CLASSIFY_RBF_SVM_H_

#include <vector>

#include "classify/classifier.h"

namespace oasis {
namespace classify {

/// Options for the kernelised SVM.
struct RbfSvmOptions {
  /// RBF kernel width: K(a, b) = exp(-gamma ||a - b||^2).
  double gamma = 1.0;
  /// L2 regularisation strength of the Pegasos objective.
  double lambda = 1e-3;
  /// Total stochastic steps (the kernelised Pegasos iteration count).
  size_t steps = 4000;
};

/// RBF-kernel SVM trained with kernelised Pegasos — the paper's "R-SVM".
///
/// The model keeps a coefficient per training example (non-zeros act as
/// support vectors); scoring evaluates the kernel against the support set
/// only. Scores are signed margins (uncalibrated).
class RbfSvm : public Classifier {
 public:
  explicit RbfSvm(RbfSvmOptions options = {});

  Status Fit(const Dataset& data, Rng& rng) override;
  double Score(std::span<const double> features) const override;
  bool probabilistic() const override { return false; }
  std::string name() const override { return "R-SVM"; }

  size_t num_support_vectors() const;

 private:
  double Kernel(std::span<const double> a, std::span<const double> b) const;

  RbfSvmOptions options_;
  size_t input_dim_ = 0;
  // Support set: flattened feature rows, labels (+-1) and alpha counts.
  std::vector<double> support_;
  std::vector<double> coeffs_;  // alpha_i * y_i / (lambda * T)
};

}  // namespace classify
}  // namespace oasis

#endif  // OASIS_CLASSIFY_RBF_SVM_H_
