#include "experiments/timing.h"

#include <ctime>

#include "common/logging.h"

namespace oasis {
namespace experiments {

namespace {
/// Process CPU time with nanosecond resolution; std::clock's CLOCKS_PER_SEC
/// granularity is too coarse to time the O(1)-per-iteration samplers.
double CpuSecondsNow() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

Result<TimingResult> TimeMethod(const MethodSpec& method, const ScoredPool& pool,
                                const Oracle& oracle, int64_t iterations,
                                int repeats, uint64_t base_seed) {
  if (iterations <= 0 || repeats <= 0) {
    return Status::InvalidArgument("TimeMethod: iterations/repeats must be positive");
  }
  OASIS_RETURN_NOT_OK(pool.Validate());

  TimingResult result;
  result.method = method.name;
  result.iterations_per_run = iterations;
  result.repeats = repeats;

  double total_run = 0.0;
  double total_setup = 0.0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    LabelCache labels(&oracle);
    Rng rng = Rng::Fork(base_seed, static_cast<uint64_t>(repeat));

    const double setup_start = CpuSecondsNow();
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                           method.factory(&pool, &labels, rng));
    total_setup += CpuSecondsNow() - setup_start;

    const double run_start = CpuSecondsNow();
    for (int64_t it = 0; it < iterations; ++it) {
      OASIS_RETURN_NOT_OK(sampler->Step());
    }
    total_run += CpuSecondsNow() - run_start;
  }

  result.cpu_seconds_per_run = total_run / repeats;
  result.cpu_setup_seconds = total_setup / repeats;
  result.cpu_seconds_per_iteration =
      result.cpu_seconds_per_run / static_cast<double>(iterations);
  return result;
}

}  // namespace experiments
}  // namespace oasis
