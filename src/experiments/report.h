#ifndef OASIS_EXPERIMENTS_REPORT_H_
#define OASIS_EXPERIMENTS_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "experiments/runner.h"

namespace oasis {
namespace experiments {

/// Fixed-width text table for harness output (the benches print the same
/// rows the paper's tables report).
class TextTable {
 public:
  /// Creates a table with one column per header.
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  std::string ToString() const;

  /// Writes ToString() to the stream.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.0132"); NaN-safe.
std::string FormatDouble(double value, int precision = 4);

/// Scientific formatting ("2.48e-05") for the Table 3 per-iteration column.
std::string FormatScientific(double value, int precision = 3);

/// Thousands-separated integer ("4,397,038").
std::string FormatCount(int64_t value);

/// Prints a set of error curves as one aligned series table: budget column
/// followed by abs-err and std-dev columns per method. Rows where a method's
/// estimate is defined in fewer than `defined_level` of repeats print "-"
/// (the paper omits those points from its plots).
void PrintCurves(std::ostream& os, const std::vector<ErrorCurve>& curves,
                 double defined_level = 0.95, size_t max_rows = 25);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_REPORT_H_
