#include "experiments/runner.h"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "stats/confidence.h"
#include "stats/running_stats.h"
#include "telemetry/telemetry.h"

namespace oasis {
namespace experiments {

MethodSpec MakePassiveSpec(double alpha) {
  MethodSpec spec;
  spec.name = "Passive";
  spec.factory = [alpha](const ScoredPool* pool, LabelCache* labels,
                         Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<PassiveSampler> sampler,
                           PassiveSampler::Create(pool, labels, alpha, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeStratifiedSpec(double alpha, std::shared_ptr<const Strata> strata) {
  MethodSpec spec;
  spec.name = "Stratified";
  spec.factory = [alpha, strata](const ScoredPool* pool, LabelCache* labels,
                                 Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(
        std::unique_ptr<StratifiedSampler> sampler,
        StratifiedSampler::Create(pool, labels, strata, alpha, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeImportanceSpec(const ImportanceOptions& options) {
  MethodSpec spec;
  spec.name = "IS";
  spec.factory = [options](const ScoredPool* pool, LabelCache* labels,
                           Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<ImportanceSampler> sampler,
                           ImportanceSampler::Create(pool, labels, options, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeOasisSpec(const OasisOptions& options,
                         std::shared_ptr<const Strata> strata) {
  MethodSpec spec;
  spec.name = "OASIS-" + std::to_string(strata->num_strata());
  spec.factory = [options, strata](const ScoredPool* pool, LabelCache* labels,
                                   Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<OasisSampler> sampler,
                           OasisSampler::Create(pool, labels, strata, options, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

namespace {

/// Raw per-checkpoint outcome of one repeat, written by the worker that ran
/// it into a preallocated slot. Keeping raw estimates (rather than partially
/// reduced statistics) is what makes the final reduction independent of
/// which worker ran which repeat: the fold happens later, in repeat order.
struct RepeatSlots {
  /// f_alpha per (repeat, checkpoint), flattened repeat-major.
  std::vector<double> f_alpha;
  /// 1 when F-hat was defined at that (repeat, checkpoint).
  std::vector<uint8_t> defined;
  /// Remote-oracle cost per (repeat, checkpoint); allocated only when the
  /// run prices labels (RunnerOptions::remote_oracle).
  std::vector<double> round_trips;
  std::vector<double> simulated_seconds;
  std::vector<double> label_cost;
  /// Retry recovery per (repeat, checkpoint); allocated only when the run
  /// retries failures (RunnerOptions::retry_policy).
  std::vector<double> retries;
  std::vector<double> give_ups;
  /// Effective sample size per (repeat, checkpoint); always allocated (cheap)
  /// since whether the sampler monitors weights is only known once built.
  std::vector<double> ess;
  size_t checkpoints = 0;

  RepeatSlots(size_t repeats, size_t num_checkpoints, bool remote, bool fault)
      : f_alpha(repeats * num_checkpoints, 0.0),
        defined(repeats * num_checkpoints, 0),
        ess(repeats * num_checkpoints, 0.0),
        checkpoints(num_checkpoints) {
    if (remote) {
      round_trips.assign(repeats * num_checkpoints, 0.0);
      simulated_seconds.assign(repeats * num_checkpoints, 0.0);
      label_cost.assign(repeats * num_checkpoints, 0.0);
    }
    if (fault) {
      retries.assign(repeats * num_checkpoints, 0.0);
      give_ups.assign(repeats * num_checkpoints, 0.0);
    }
  }

  size_t index(size_t repeat, size_t checkpoint) const {
    return repeat * checkpoints + checkpoint;
  }
};

/// Runs one repeat and writes its trajectory into the repeat's slots.
/// Stepping goes through RunTrajectory and hence Sampler::StepBatch, so every
/// repeat uses the samplers' amortised batch hot paths. Workers touch only
/// shared-immutable state (pool, oracle, method) plus this repeat's slot
/// range — the hot path takes no locks.
///
/// The repeat's oracle decorator stack (base <- faults <- remote <- retries,
/// whichever layers `spec` configures) is built per repeat through
/// OracleStackBuilder with ForkSeeds(repeat), so chaos/jitter streams are
/// decorrelated across repeats while the cost accounting — like the
/// LabelCache — is owned by the repeat and therefore deterministic whatever
/// the fan-out does. `store` (nullable) is the run-wide SharedLabelStore of
/// spec.share_labels. `degeneracy_seen` is flipped when the sampler exposed
/// a weight monitor (only known once the sampler is built).
Status RunOneRepeat(const MethodSpec& method, const ScoredPool& pool,
                    const Oracle& oracle, const StackSpec& spec,
                    const RunnerOptions& options, Rng rng, size_t repeat,
                    RepeatSlots* slots, SharedLabelStore* store,
                    std::atomic<bool>* degeneracy_seen) {
  TELEMETRY_SPAN("repeat", "runner");
  OASIS_ASSIGN_OR_RETURN(const OracleStack stack,
                         OracleStackBuilder(spec)
                             .ShareLabels(spec.share_labels ? store : nullptr)
                             .ForkSeeds(static_cast<uint64_t>(repeat))
                             .Build(&oracle));
  LabelCache labels(&stack.top());
  OASIS_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                         method.factory(&pool, &labels, rng));
  OASIS_ASSIGN_OR_RETURN(Trajectory trajectory,
                         RunTrajectory(*sampler, options.trajectory));
  OASIS_CHECK_EQ(trajectory.snapshots.size(), slots->checkpoints);
  for (size_t i = 0; i < trajectory.snapshots.size(); ++i) {
    const EstimateSnapshot& snap = trajectory.snapshots[i];
    const size_t slot = slots->index(repeat, i);
    slots->f_alpha[slot] = snap.f_alpha;
    slots->defined[slot] = snap.f_defined ? 1 : 0;
    if (trajectory.has_remote_stats && !slots->round_trips.empty()) {
      slots->round_trips[slot] =
          static_cast<double>(trajectory.remote_round_trips[i]);
      slots->simulated_seconds[slot] = trajectory.remote_seconds[i];
      slots->label_cost[slot] = trajectory.remote_cost[i];
    }
    if (trajectory.has_fault_stats && !slots->retries.empty()) {
      slots->retries[slot] = static_cast<double>(trajectory.oracle_retries[i]);
      slots->give_ups[slot] = static_cast<double>(trajectory.oracle_give_ups[i]);
    }
    if (trajectory.has_degeneracy_stats) {
      slots->ess[slot] = trajectory.ess[i];
    }
  }
  if (trajectory.has_degeneracy_stats) {
    degeneracy_seen->store(true, std::memory_order_release);
  }
  return Status::OK();
}

}  // namespace

StackSpec EffectiveStackSpec(const RunnerOptions& options) {
  StackSpec spec = options.stack;
  if (!spec.fault_injection.has_value()) {
    spec.fault_injection = options.fault_injection;
  }
  if (!spec.remote.has_value()) spec.remote = options.remote_oracle;
  if (!spec.retry.has_value()) spec.retry = options.retry_policy;
  // Sharing is meaningful only with a wire to share; normalising here keeps
  // the historical tolerance for remote_share_labels without remote_oracle.
  spec.share_labels = spec.remote.has_value() &&
                      (spec.share_labels || options.remote_share_labels);
  return spec;
}

Result<StackSpec> StackSpecFromConfig(const ConfigMap& config,
                                      const std::string& prefix) {
  StackSpec spec;
  OASIS_ASSIGN_OR_RETURN(const bool fault,
                         config.GetBoolOr(prefix + "fault", false));
  if (fault) {
    FaultInjectionOptions fi;
    OASIS_ASSIGN_OR_RETURN(
        fi.transient_failure_rate,
        config.GetDoubleOr(prefix + "fault_transient_rate",
                           fi.transient_failure_rate));
    OASIS_ASSIGN_OR_RETURN(
        fi.timeout_rate,
        config.GetDoubleOr(prefix + "fault_timeout_rate", fi.timeout_rate));
    OASIS_ASSIGN_OR_RETURN(
        fi.item_drop_rate,
        config.GetDoubleOr(prefix + "fault_item_drop_rate", fi.item_drop_rate));
    OASIS_ASSIGN_OR_RETURN(
        fi.outage_after_attempts,
        config.GetInt64Or(prefix + "fault_outage_after",
                          fi.outage_after_attempts));
    OASIS_ASSIGN_OR_RETURN(
        const int64_t fault_seed,
        config.GetInt64Or(prefix + "fault_seed",
                          static_cast<int64_t>(fi.seed)));
    fi.seed = static_cast<uint64_t>(fault_seed);
    spec.fault_injection = fi;
  }
  OASIS_ASSIGN_OR_RETURN(const bool remote,
                         config.GetBoolOr(prefix + "remote", false));
  if (remote) {
    RemoteOracleOptions ro;
    OASIS_ASSIGN_OR_RETURN(
        ro.round_trip_seconds,
        config.GetDoubleOr(prefix + "remote_round_trip_seconds",
                           ro.round_trip_seconds));
    OASIS_ASSIGN_OR_RETURN(
        ro.per_item_seconds,
        config.GetDoubleOr(prefix + "remote_per_item_seconds",
                           ro.per_item_seconds));
    OASIS_ASSIGN_OR_RETURN(
        ro.cost_per_label,
        config.GetDoubleOr(prefix + "remote_cost_per_label", ro.cost_per_label));
    OASIS_ASSIGN_OR_RETURN(
        ro.jitter_fraction,
        config.GetDoubleOr(prefix + "remote_jitter_fraction",
                           ro.jitter_fraction));
    OASIS_ASSIGN_OR_RETURN(
        const int64_t jitter_seed,
        config.GetInt64Or(prefix + "remote_jitter_seed",
                          static_cast<int64_t>(ro.jitter_seed)));
    ro.jitter_seed = static_cast<uint64_t>(jitter_seed);
    OASIS_ASSIGN_OR_RETURN(
        ro.max_items_per_round_trip,
        config.GetInt64Or(prefix + "remote_max_items_per_trip",
                          ro.max_items_per_round_trip));
    spec.remote = ro;
  }
  OASIS_ASSIGN_OR_RETURN(const bool retry,
                         config.GetBoolOr(prefix + "retry", false));
  if (retry) {
    RetryPolicy rp;
    OASIS_ASSIGN_OR_RETURN(
        const int64_t max_attempts,
        config.GetInt64Or(prefix + "retry_max_attempts", rp.max_attempts));
    rp.max_attempts = static_cast<int>(max_attempts);
    OASIS_ASSIGN_OR_RETURN(
        rp.initial_backoff_seconds,
        config.GetDoubleOr(prefix + "retry_initial_backoff_seconds",
                           rp.initial_backoff_seconds));
    OASIS_ASSIGN_OR_RETURN(
        rp.backoff_multiplier,
        config.GetDoubleOr(prefix + "retry_backoff_multiplier",
                           rp.backoff_multiplier));
    OASIS_ASSIGN_OR_RETURN(
        rp.max_backoff_seconds,
        config.GetDoubleOr(prefix + "retry_max_backoff_seconds",
                           rp.max_backoff_seconds));
    OASIS_ASSIGN_OR_RETURN(
        rp.jitter_fraction,
        config.GetDoubleOr(prefix + "retry_jitter_fraction",
                           rp.jitter_fraction));
    OASIS_ASSIGN_OR_RETURN(
        const int64_t retry_jitter_seed,
        config.GetInt64Or(prefix + "retry_jitter_seed",
                          static_cast<int64_t>(rp.jitter_seed)));
    rp.jitter_seed = static_cast<uint64_t>(retry_jitter_seed);
    OASIS_ASSIGN_OR_RETURN(
        rp.per_attempt_timeout_seconds,
        config.GetDoubleOr(prefix + "retry_per_attempt_timeout_seconds",
                           rp.per_attempt_timeout_seconds));
    OASIS_ASSIGN_OR_RETURN(
        rp.overall_deadline_seconds,
        config.GetDoubleOr(prefix + "retry_overall_deadline_seconds",
                           rp.overall_deadline_seconds));
    OASIS_ASSIGN_OR_RETURN(
        const int64_t breaker_threshold,
        config.GetInt64Or(prefix + "retry_breaker_threshold",
                          rp.breaker_failure_threshold));
    rp.breaker_failure_threshold = static_cast<int>(breaker_threshold);
    OASIS_ASSIGN_OR_RETURN(
        rp.breaker_cooldown_calls,
        config.GetInt64Or(prefix + "retry_breaker_cooldown_calls",
                          rp.breaker_cooldown_calls));
    spec.retry = rp;
  }
  OASIS_ASSIGN_OR_RETURN(spec.share_labels,
                         config.GetBoolOr(prefix + "share_labels", false));
  if (spec.share_labels && !spec.remote.has_value()) {
    return Status::InvalidArgument(
        "StackSpecFromConfig: " + prefix + "share_labels requires " + prefix +
        "remote = true");
  }
  return spec;
}

namespace {

/// One `key = value` config line with a %.17g number (value-exact through
/// ConfigMap's strtod/strtoll round trip).
void AppendConfigLine(const std::string& key, double value, std::string* out) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += key + " = " + buffer + "\n";
}

void AppendConfigLine(const std::string& key, int64_t value, std::string* out) {
  *out += key + " = " + std::to_string(value) + "\n";
}

}  // namespace

void AppendStackSpecConfig(const StackSpec& spec, const std::string& prefix,
                           std::string* out) {
  if (spec.fault_injection.has_value()) {
    const FaultInjectionOptions& fi = *spec.fault_injection;
    *out += prefix + "fault = true\n";
    AppendConfigLine(prefix + "fault_transient_rate", fi.transient_failure_rate,
                     out);
    AppendConfigLine(prefix + "fault_timeout_rate", fi.timeout_rate, out);
    AppendConfigLine(prefix + "fault_item_drop_rate", fi.item_drop_rate, out);
    AppendConfigLine(prefix + "fault_outage_after", fi.outage_after_attempts,
                     out);
    AppendConfigLine(prefix + "fault_seed", static_cast<int64_t>(fi.seed), out);
  }
  if (spec.remote.has_value()) {
    const RemoteOracleOptions& ro = *spec.remote;
    *out += prefix + "remote = true\n";
    AppendConfigLine(prefix + "remote_round_trip_seconds",
                     ro.round_trip_seconds, out);
    AppendConfigLine(prefix + "remote_per_item_seconds", ro.per_item_seconds,
                     out);
    AppendConfigLine(prefix + "remote_cost_per_label", ro.cost_per_label, out);
    AppendConfigLine(prefix + "remote_jitter_fraction", ro.jitter_fraction,
                     out);
    AppendConfigLine(prefix + "remote_jitter_seed",
                     static_cast<int64_t>(ro.jitter_seed), out);
    AppendConfigLine(prefix + "remote_max_items_per_trip",
                     ro.max_items_per_round_trip, out);
  }
  if (spec.retry.has_value()) {
    const RetryPolicy& rp = *spec.retry;
    *out += prefix + "retry = true\n";
    AppendConfigLine(prefix + "retry_max_attempts",
                     static_cast<int64_t>(rp.max_attempts), out);
    AppendConfigLine(prefix + "retry_initial_backoff_seconds",
                     rp.initial_backoff_seconds, out);
    AppendConfigLine(prefix + "retry_backoff_multiplier", rp.backoff_multiplier,
                     out);
    AppendConfigLine(prefix + "retry_max_backoff_seconds",
                     rp.max_backoff_seconds, out);
    AppendConfigLine(prefix + "retry_jitter_fraction", rp.jitter_fraction, out);
    AppendConfigLine(prefix + "retry_jitter_seed",
                     static_cast<int64_t>(rp.jitter_seed), out);
    AppendConfigLine(prefix + "retry_per_attempt_timeout_seconds",
                     rp.per_attempt_timeout_seconds, out);
    AppendConfigLine(prefix + "retry_overall_deadline_seconds",
                     rp.overall_deadline_seconds, out);
    AppendConfigLine(prefix + "retry_breaker_threshold",
                     static_cast<int64_t>(rp.breaker_failure_threshold), out);
    AppendConfigLine(prefix + "retry_breaker_cooldown_calls",
                     rp.breaker_cooldown_calls, out);
  }
  if (spec.share_labels) {
    *out += prefix + "share_labels = true\n";
  }
}

Result<ErrorCurve> RunErrorCurve(const MethodSpec& method, const ScoredPool& pool,
                                 const Oracle& oracle, double true_f,
                                 const RunnerOptions& options) {
  if (options.repeats <= 0) {
    return Status::InvalidArgument("RunErrorCurve: repeats must be positive");
  }
  OASIS_RETURN_NOT_OK(pool.Validate());

  // Derive checkpoint count once, to shape the result slots.
  size_t num_checkpoints = 0;
  for (int64_t b = options.trajectory.checkpoint_every;
       b <= options.trajectory.budget; b += options.trajectory.checkpoint_every) {
    ++num_checkpoints;
  }
  if (num_checkpoints == 0) {
    return Status::InvalidArgument("RunErrorCurve: no checkpoints in budget");
  }

  // Observability (observe-only; see RunnerTelemetryOptions). The scoped
  // enable turns the process-wide switch on for this call and restores the
  // previous state on every exit path; the heartbeat thread, when requested,
  // reads the default registry until destroyed at return.
  std::optional<telemetry::ScopedEnable> telemetry_scope;
  std::optional<telemetry::Heartbeat> heartbeat;
  if (options.telemetry.enable) {
    telemetry_scope.emplace(true);
    if (options.telemetry.heartbeat_interval_seconds > 0.0) {
      telemetry::HeartbeatOptions beat;
      beat.interval_seconds = options.telemetry.heartbeat_interval_seconds;
      heartbeat.emplace(&telemetry::DefaultRegistry(), beat);
    }
  }
  TELEMETRY_SPAN("run_error_curve", "runner");

  const size_t repeats = static_cast<size_t>(options.repeats);
  const StackSpec stack_spec = EffectiveStackSpec(options);
  const bool remote = stack_spec.remote.has_value();
  const bool fault = stack_spec.retry.has_value();
  RepeatSlots slots(repeats, num_checkpoints, remote, fault);
  std::atomic<bool> degeneracy_seen{false};
  // Run-wide shared label store: any repeat's fetched label answers every
  // later request for that item, from any repeat (sound only for
  // deterministic RNG-free oracles; RemoteOracle enforces the gate).
  std::unique_ptr<SharedLabelStore> store;
  if (stack_spec.share_labels) {
    store = std::make_unique<SharedLabelStore>(oracle.num_items());
  }
  std::vector<Status> repeat_status(repeats);
  std::atomic<int> completed{0};
  std::atomic<bool> failed{false};
  // Internal token so a failing repeat also stops the fan-out early; user
  // cancellation is folded into it inside the body (ParallelFor polls one
  // token between chunks, the body polls the user's token per repeat).
  CancellationToken abort_remaining;

  // Never spawn more workers than there are repeats to run — including on
  // the default (hardware concurrency) path, where a small-repeat call on a
  // many-core machine would otherwise create a stack of idle threads.
  const int requested_threads = options.num_threads <= 0
                                    ? ThreadPool::DefaultThreadCount()
                                    : options.num_threads;
  ThreadPool thread_pool(std::min(requested_threads, options.repeats));
  thread_pool.ParallelFor(0, options.repeats, [&](int64_t repeat) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      abort_remaining.RequestCancel();
      return;
    }
    telemetry::Gauge* in_flight = nullptr;
    if (OASIS_TELEMETRY_ON) {
      static telemetry::Gauge& in_flight_gauge =
          telemetry::DefaultRegistry().AddGauge(
              "oasis_runner_repeats_in_flight",
              "Repeats currently executing on pool workers.");
      in_flight = &in_flight_gauge;
      in_flight->Add(1.0);
    }
    const Status status =
        RunOneRepeat(method, pool, oracle, stack_spec, options,
                     Rng::Fork(options.base_seed, static_cast<uint64_t>(repeat)),
                     static_cast<size_t>(repeat), &slots, store.get(),
                     &degeneracy_seen);
    if (in_flight != nullptr) {
      in_flight->Add(-1.0);
      static telemetry::Counter& repeats_done =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_runner_repeats_completed_total",
              "Repeats finished (successfully or not) by the fan-out.");
      repeats_done.Increment();
    }
    if (!status.ok()) {
      repeat_status[static_cast<size_t>(repeat)] = status;
      failed.store(true, std::memory_order_release);
      abort_remaining.RequestCancel();
      return;
    }
    if (options.progress) {
      options.progress(completed.fetch_add(1, std::memory_order_acq_rel) + 1,
                       options.repeats);
    }
  }, &abort_remaining);

  if (failed.load(std::memory_order_acquire)) {
    // Deterministic error selection: the lowest-indexed failing repeat wins,
    // regardless of which worker hit its failure first.
    for (const Status& status : repeat_status) {
      if (!status.ok()) return status;
    }
  }
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return Status::Cancelled("RunErrorCurve: cancelled mid-run");
  }

  // Deterministic reduction: fold raw per-repeat outcomes in repeat order.
  // This reproduces the historical sequential runner's arithmetic exactly —
  // same RunningStats::Add sequence — whatever the fan-out above did.
  TELEMETRY_SPAN("reduce", "runner");
  std::vector<RunningStats> abs_error(num_checkpoints);
  std::vector<RunningStats> estimate(num_checkpoints);
  std::vector<int64_t> defined_count(num_checkpoints, 0);
  // Cost columns fold over ALL repeats (a repeat pays for its labels whether
  // or not its estimate is defined yet), also in repeat order.
  std::vector<RunningStats> round_trips(remote ? num_checkpoints : 0);
  std::vector<RunningStats> simulated_seconds(remote ? num_checkpoints : 0);
  std::vector<RunningStats> label_cost(remote ? num_checkpoints : 0);
  const bool degeneracy = degeneracy_seen.load(std::memory_order_acquire);
  std::vector<RunningStats> retries(fault ? num_checkpoints : 0);
  std::vector<RunningStats> give_ups(fault ? num_checkpoints : 0);
  std::vector<RunningStats> ess(degeneracy ? num_checkpoints : 0);
  for (size_t r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < num_checkpoints; ++i) {
      const size_t slot = slots.index(r, i);
      if (remote) {
        round_trips[i].Add(slots.round_trips[slot]);
        simulated_seconds[i].Add(slots.simulated_seconds[slot]);
        label_cost[i].Add(slots.label_cost[slot]);
      }
      if (fault) {
        retries[i].Add(slots.retries[slot]);
        give_ups[i].Add(slots.give_ups[slot]);
      }
      if (degeneracy) {
        ess[i].Add(slots.ess[slot]);
      }
      if (slots.defined[slot] == 0) continue;
      const double f = slots.f_alpha[slot];
      abs_error[i].Add(std::abs(f - true_f));
      estimate[i].Add(f);
      ++defined_count[i];
    }
  }

  ErrorCurve curve;
  curve.method = method.name;
  curve.repeats = options.repeats;
  for (int64_t b = options.trajectory.checkpoint_every;
       b <= options.trajectory.budget; b += options.trajectory.checkpoint_every) {
    curve.budgets.push_back(b);
  }
  curve.mean_abs_error.resize(num_checkpoints);
  curve.stddev.resize(num_checkpoints);
  curve.mean_estimate.resize(num_checkpoints);
  curve.frac_defined.resize(num_checkpoints);
  for (size_t i = 0; i < num_checkpoints; ++i) {
    curve.mean_abs_error[i] = abs_error[i].mean();
    curve.stddev[i] = estimate[i].stddev();
    curve.mean_estimate[i] = estimate[i].mean();
    curve.frac_defined[i] = static_cast<double>(defined_count[i]) /
                            static_cast<double>(options.repeats);
  }
  if (remote) {
    curve.has_remote_cost = true;
    curve.mean_round_trips.resize(num_checkpoints);
    curve.mean_simulated_seconds.resize(num_checkpoints);
    curve.mean_label_cost.resize(num_checkpoints);
    for (size_t i = 0; i < num_checkpoints; ++i) {
      curve.mean_round_trips[i] = round_trips[i].mean();
      curve.mean_simulated_seconds[i] = simulated_seconds[i].mean();
      curve.mean_label_cost[i] = label_cost[i].mean();
    }
  }
  if (fault) {
    curve.has_fault_stats = true;
    curve.mean_retries.resize(num_checkpoints);
    curve.mean_give_ups.resize(num_checkpoints);
    for (size_t i = 0; i < num_checkpoints; ++i) {
      curve.mean_retries[i] = retries[i].mean();
      curve.mean_give_ups[i] = give_ups[i].mean();
    }
  }
  if (degeneracy) {
    curve.has_degeneracy_stats = true;
    curve.mean_ess.resize(num_checkpoints);
    for (size_t i = 0; i < num_checkpoints; ++i) {
      curve.mean_ess[i] = ess[i].mean();
    }
  }
  // Raw final-checkpoint estimates in repeat order, for dispersion/coverage
  // consumers that need more than the aggregates above.
  curve.final_estimates.resize(repeats);
  curve.final_defined.resize(repeats);
  for (size_t r = 0; r < repeats; ++r) {
    const size_t slot = slots.index(r, num_checkpoints - 1);
    curve.final_estimates[r] = slots.f_alpha[slot];
    curve.final_defined[r] = slots.defined[slot];
  }
  return curve;
}

Result<FinalErrorSummary> RunFinalError(const MethodSpec& method,
                                        const ScoredPool& pool,
                                        const Oracle& oracle, double true_f,
                                        const RunnerOptions& options) {
  RunnerOptions final_options = options;
  // One checkpoint at the final budget is all we need.
  final_options.trajectory.checkpoint_every = final_options.trajectory.budget;
  OASIS_ASSIGN_OR_RETURN(
      ErrorCurve curve, RunErrorCurve(method, pool, oracle, true_f, final_options));

  // Recompute the CI from the curve's aggregate statistics: stddev of the
  // absolute error is not directly stored, so re-derive from a dedicated run
  // is wasteful — instead approximate with stddev of estimates, which equals
  // the error spread around a fixed truth up to bias. For the Figure 5 bars
  // we follow the paper and report the standard error of the mean |error|.
  FinalErrorSummary summary;
  summary.method = method.name;
  OASIS_CHECK(!curve.mean_abs_error.empty());
  summary.mean_abs_error = curve.mean_abs_error.back();
  summary.frac_defined = curve.frac_defined.back();
  summary.repeats = curve.repeats;
  const double n_defined =
      std::max(1.0, curve.frac_defined.back() * curve.repeats);
  summary.ci_half_width =
      NormalQuantileTwoSided(0.95) * curve.stddev.back() / std::sqrt(n_defined);
  return summary;
}

}  // namespace experiments
}  // namespace oasis
