#include "experiments/runner.h"

#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "stats/confidence.h"
#include "stats/running_stats.h"

namespace oasis {
namespace experiments {

MethodSpec MakePassiveSpec(double alpha) {
  MethodSpec spec;
  spec.name = "Passive";
  spec.factory = [alpha](const ScoredPool* pool, LabelCache* labels,
                         Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<PassiveSampler> sampler,
                           PassiveSampler::Create(pool, labels, alpha, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeStratifiedSpec(double alpha, std::shared_ptr<const Strata> strata) {
  MethodSpec spec;
  spec.name = "Stratified";
  spec.factory = [alpha, strata](const ScoredPool* pool, LabelCache* labels,
                                 Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(
        std::unique_ptr<StratifiedSampler> sampler,
        StratifiedSampler::Create(pool, labels, strata, alpha, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeImportanceSpec(const ImportanceOptions& options) {
  MethodSpec spec;
  spec.name = "IS";
  spec.factory = [options](const ScoredPool* pool, LabelCache* labels,
                           Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<ImportanceSampler> sampler,
                           ImportanceSampler::Create(pool, labels, options, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

MethodSpec MakeOasisSpec(const OasisOptions& options,
                         std::shared_ptr<const Strata> strata) {
  MethodSpec spec;
  spec.name = "OASIS-" + std::to_string(strata->num_strata());
  spec.factory = [options, strata](const ScoredPool* pool, LabelCache* labels,
                                   Rng rng) -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(std::unique_ptr<OasisSampler> sampler,
                           OasisSampler::Create(pool, labels, strata, options, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };
  return spec;
}

namespace {

/// Per-checkpoint accumulators for one worker thread.
struct CurveAccumulator {
  std::vector<RunningStats> abs_error;
  std::vector<RunningStats> estimate;
  std::vector<int64_t> defined_count;
  int64_t repeats = 0;

  explicit CurveAccumulator(size_t checkpoints)
      : abs_error(checkpoints), estimate(checkpoints), defined_count(checkpoints, 0) {}

  void Merge(const CurveAccumulator& other) {
    for (size_t i = 0; i < abs_error.size(); ++i) {
      abs_error[i].Merge(other.abs_error[i]);
      estimate[i].Merge(other.estimate[i]);
      defined_count[i] += other.defined_count[i];
    }
    repeats += other.repeats;
  }
};

/// Runs one repeat and folds its trajectory into the accumulator. Stepping
/// goes through RunTrajectory and hence Sampler::StepBatch, so every repeat
/// uses the samplers' amortised batch hot paths.
Status RunOneRepeat(const MethodSpec& method, const ScoredPool& pool,
                    Oracle& oracle, double true_f, const TrajectoryOptions& traj,
                    Rng rng, CurveAccumulator* acc) {
  LabelCache labels(&oracle);
  OASIS_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                         method.factory(&pool, &labels, rng));
  OASIS_ASSIGN_OR_RETURN(Trajectory trajectory, RunTrajectory(*sampler, traj));
  OASIS_CHECK_EQ(trajectory.snapshots.size(), acc->abs_error.size());
  for (size_t i = 0; i < trajectory.snapshots.size(); ++i) {
    const EstimateSnapshot& snap = trajectory.snapshots[i];
    if (!snap.f_defined) continue;
    acc->abs_error[i].Add(std::abs(snap.f_alpha - true_f));
    acc->estimate[i].Add(snap.f_alpha);
    ++acc->defined_count[i];
  }
  ++acc->repeats;
  return Status::OK();
}

/// Derives the per-repeat RNG stream: independent of thread scheduling.
Rng RepeatRng(uint64_t base_seed, int repeat) {
  return Rng(base_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(repeat + 1)));
}

}  // namespace

Result<ErrorCurve> RunErrorCurve(const MethodSpec& method, const ScoredPool& pool,
                                 Oracle& oracle, double true_f,
                                 const RunnerOptions& options) {
  if (options.repeats <= 0) {
    return Status::InvalidArgument("RunErrorCurve: repeats must be positive");
  }
  OASIS_RETURN_NOT_OK(pool.Validate());

  // Derive checkpoint count once, to shape all accumulators.
  size_t num_checkpoints = 0;
  for (int64_t b = options.trajectory.checkpoint_every;
       b <= options.trajectory.budget; b += options.trajectory.checkpoint_every) {
    ++num_checkpoints;
  }
  if (num_checkpoints == 0) {
    return Status::InvalidArgument("RunErrorCurve: no checkpoints in budget");
  }

  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  num_threads = std::min(num_threads, options.repeats);

  std::vector<CurveAccumulator> accumulators(
      static_cast<size_t>(num_threads), CurveAccumulator(num_checkpoints));
  std::atomic<int> next_repeat{0};
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;

  auto worker = [&](int thread_index) {
    CurveAccumulator& acc = accumulators[static_cast<size_t>(thread_index)];
    for (;;) {
      const int repeat = next_repeat.fetch_add(1);
      if (repeat >= options.repeats || failed.load()) break;
      const Status status =
          RunOneRepeat(method, pool, oracle, true_f, options.trajectory,
                       RepeatRng(options.base_seed, repeat), &acc);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = status;
        failed.store(true);
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  if (failed.load()) return first_error;

  CurveAccumulator total(num_checkpoints);
  for (const CurveAccumulator& acc : accumulators) total.Merge(acc);

  ErrorCurve curve;
  curve.method = method.name;
  curve.repeats = static_cast<int>(total.repeats);
  for (int64_t b = options.trajectory.checkpoint_every;
       b <= options.trajectory.budget; b += options.trajectory.checkpoint_every) {
    curve.budgets.push_back(b);
  }
  curve.mean_abs_error.resize(num_checkpoints);
  curve.stddev.resize(num_checkpoints);
  curve.mean_estimate.resize(num_checkpoints);
  curve.frac_defined.resize(num_checkpoints);
  for (size_t i = 0; i < num_checkpoints; ++i) {
    curve.mean_abs_error[i] = total.abs_error[i].mean();
    curve.stddev[i] = total.estimate[i].stddev();
    curve.mean_estimate[i] = total.estimate[i].mean();
    curve.frac_defined[i] =
        static_cast<double>(total.defined_count[i]) /
        static_cast<double>(total.repeats);
  }
  return curve;
}

Result<FinalErrorSummary> RunFinalError(const MethodSpec& method,
                                        const ScoredPool& pool, Oracle& oracle,
                                        double true_f,
                                        const RunnerOptions& options) {
  RunnerOptions final_options = options;
  // One checkpoint at the final budget is all we need.
  final_options.trajectory.checkpoint_every = final_options.trajectory.budget;
  OASIS_ASSIGN_OR_RETURN(
      ErrorCurve curve, RunErrorCurve(method, pool, oracle, true_f, final_options));

  // Recompute the CI from the curve's aggregate statistics: stddev of the
  // absolute error is not directly stored, so re-derive from a dedicated run
  // is wasteful — instead approximate with stddev of estimates, which equals
  // the error spread around a fixed truth up to bias. For the Figure 5 bars
  // we follow the paper and report the standard error of the mean |error|.
  FinalErrorSummary summary;
  summary.method = method.name;
  OASIS_CHECK(!curve.mean_abs_error.empty());
  summary.mean_abs_error = curve.mean_abs_error.back();
  summary.frac_defined = curve.frac_defined.back();
  summary.repeats = curve.repeats;
  const double n_defined =
      std::max(1.0, curve.frac_defined.back() * curve.repeats);
  summary.ci_half_width =
      NormalQuantileTwoSided(0.95) * curve.stddev.back() / std::sqrt(n_defined);
  return summary;
}

}  // namespace experiments
}  // namespace oasis
