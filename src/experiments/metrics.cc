#include "experiments/metrics.h"

namespace oasis {
namespace experiments {

int64_t FirstDefinedBudget(const ErrorCurve& curve, double level) {
  for (size_t i = 0; i < curve.budgets.size(); ++i) {
    if (curve.frac_defined[i] >= level) return curve.budgets[i];
  }
  return -1;
}

int64_t BudgetToReachError(const ErrorCurve& curve, double target) {
  // Scan from the end to find the last index above target; the answer is the
  // next checkpoint (error <= target from there on).
  int64_t result = -1;
  for (size_t i = curve.budgets.size(); i > 0; --i) {
    const size_t idx = i - 1;
    if (curve.mean_abs_error[idx] > target) {
      // idx is the last above-target point.
      if (idx + 1 < curve.budgets.size()) return curve.budgets[idx + 1];
      return -1;  // Never settles below target.
    }
    result = curve.budgets[idx];
  }
  return result;  // Entire curve at or below target.
}

Result<double> LabelSaving(const ErrorCurve& method, const ErrorCurve& baseline,
                           double target) {
  const int64_t method_budget = BudgetToReachError(method, target);
  const int64_t baseline_budget = BudgetToReachError(baseline, target);
  if (method_budget < 0 || baseline_budget <= 0) {
    return Status::InvalidArgument(
        "LabelSaving: a curve never reaches the target error");
  }
  return 1.0 - static_cast<double>(method_budget) /
                   static_cast<double>(baseline_budget);
}

ErrorCurve ThinCurve(const ErrorCurve& curve, size_t max_points) {
  if (max_points == 0 || curve.budgets.size() <= max_points) return curve;
  ErrorCurve thin;
  thin.method = curve.method;
  thin.repeats = curve.repeats;
  const size_t stride = (curve.budgets.size() + max_points - 1) / max_points;
  for (size_t i = stride - 1; i < curve.budgets.size(); i += stride) {
    thin.budgets.push_back(curve.budgets[i]);
    thin.mean_abs_error.push_back(curve.mean_abs_error[i]);
    thin.stddev.push_back(curve.stddev[i]);
    thin.mean_estimate.push_back(curve.mean_estimate[i]);
    thin.frac_defined.push_back(curve.frac_defined[i]);
  }
  return thin;
}

}  // namespace experiments
}  // namespace oasis
