#include "experiments/verify.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/confidence.h"
#include "stats/running_stats.h"

namespace oasis {
namespace experiments {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

VerifyCheck MakeCheck(const std::string& name, bool passed,
                      const std::string& detail) {
  VerifyCheck check;
  check.name = name;
  check.passed = passed;
  check.detail = detail;
  return check;
}

}  // namespace

std::string VerifyReport::Render() const {
  std::ostringstream out;
  out << (passed ? "PASS" : "FAIL") << "  scenario=" << scenario
      << " method=" << method << '\n';
  for (const VerifyCheck& check : checks) {
    out << "  [" << (check.passed ? "pass" : "FAIL") << "] " << check.name
        << ": " << check.detail << '\n';
  }
  return out.str();
}

Result<VerifyReport> VerifyRun(const RunSummary& summary,
                               const ErrorCurve* curve,
                               const VerifyOptions& options) {
  if (summary.repeats <= 0 ||
      summary.final_estimates.size() !=
          static_cast<size_t>(summary.repeats) ||
      summary.final_defined.size() != summary.final_estimates.size()) {
    return Status::InvalidArgument(
        "VerifyRun: summary carries no usable per-repeat estimates");
  }
  VerifyReport report;
  report.scenario = summary.scenario;
  report.method = summary.method;

  // 1. aggregate-consistency: rebuild the final-budget aggregates from the
  // raw per-repeat estimates with the runner's exact arithmetic (same
  // RunningStats fold, defined repeats only, repeat order) and demand they
  // reproduce the stored values. Catches hand-edited or truncated files.
  RunningStats estimate_stats;
  RunningStats error_stats;
  int64_t defined = 0;
  for (size_t r = 0; r < summary.final_estimates.size(); ++r) {
    if (summary.final_defined[r] == 0) continue;
    estimate_stats.Add(summary.final_estimates[r]);
    error_stats.Add(std::abs(summary.final_estimates[r] - summary.true_f));
    ++defined;
  }
  const double frac_defined =
      static_cast<double>(defined) / static_cast<double>(summary.repeats);
  const double tol = options.aggregate_tolerance;
  const bool aggregates_ok =
      std::abs(estimate_stats.mean() - summary.final_mean_estimate) <= tol &&
      std::abs(estimate_stats.stddev() - summary.final_stddev) <= tol &&
      std::abs(error_stats.mean() - summary.final_mean_abs_error) <= tol &&
      std::abs(frac_defined - summary.final_frac_defined) <= tol;
  report.checks.push_back(MakeCheck(
      "aggregate-consistency", aggregates_ok,
      "recomputed mean=" + Num(estimate_stats.mean()) + " stddev=" +
          Num(estimate_stats.stddev()) + " frac_defined=" + Num(frac_defined) +
          " vs stored mean=" + Num(summary.final_mean_estimate) + " stddev=" +
          Num(summary.final_stddev) + " frac_defined=" +
          Num(summary.final_frac_defined)));

  // 2. estimate-defined.
  report.checks.push_back(MakeCheck(
      "estimate-defined", frac_defined >= options.min_frac_defined,
      Num(frac_defined) + " of repeats defined (need >= " +
          Num(options.min_frac_defined) + ")"));

  // 3. estimate-tolerance against the constructed truth.
  const double tolerance = options.tolerance_override > 0.0
                               ? options.tolerance_override
                               : summary.verify_tolerance;
  const double bias = std::abs(estimate_stats.mean() - summary.true_f);
  report.checks.push_back(MakeCheck(
      "estimate-tolerance", defined > 0 && bias <= tolerance,
      "|mean F-hat - F| = |" + Num(estimate_stats.mean()) + " - " +
          Num(summary.true_f) + "| = " + Num(bias) + " (tolerance " +
          Num(tolerance) + ")"));

  // 4. ci-coverage: the nominal normal interval F-hat_r +- z * sigma-hat
  // should cover the truth for ~ci_level of the repeats. sigma-hat is the
  // cross-repeat sample stddev, so this is a predictive-interval coverage
  // test of approximate normality and unbiasedness combined.
  if (defined >= options.coverage_min_repeats) {
    const double z = NormalQuantileTwoSided(options.ci_level);
    const double half_width = z * estimate_stats.stddev();
    int64_t covered = 0;
    for (size_t r = 0; r < summary.final_estimates.size(); ++r) {
      if (summary.final_defined[r] == 0) continue;
      if (std::abs(summary.final_estimates[r] - summary.true_f) <= half_width) {
        ++covered;
      }
    }
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(defined);
    report.checks.push_back(MakeCheck(
        "ci-coverage",
        coverage >= options.coverage_min && coverage <= options.coverage_max,
        Num(coverage) + " of repeats covered by +-" + Num(half_width) +
            " (band [" + Num(options.coverage_min) + ", " +
            Num(options.coverage_max) + "])"));
  } else {
    report.checks.push_back(MakeCheck(
        "ci-coverage", true,
        "skipped: only " + std::to_string(defined) + " defined repeats (< " +
            std::to_string(options.coverage_min_repeats) + ")"));
  }

  // 5. error-decay over the curve, when provided.
  if (curve != nullptr) {
    if (curve->mean_abs_error.empty()) {
      return Status::InvalidArgument("VerifyRun: curve has no checkpoints");
    }
    const double first = curve->mean_abs_error.front();
    const double last = curve->mean_abs_error.back();
    const double bound = options.decay_factor * first + options.decay_slack;
    report.checks.push_back(MakeCheck(
        "error-decay", last <= bound,
        "final mean |error| " + Num(last) + " vs bound " + Num(bound) +
            " (first checkpoint " + Num(first) + ")"));
  }

  // 6. degeneracy-flag: pools constructed to break static SIS must trip the
  // IS sampler's monitor; every other monitored pairing must stay healthy
  // (the adaptive sampler escaping the trap is exactly the paper's point).
  if (summary.degeneracy_monitored) {
    const bool is_static_is = summary.method == "IS";
    const bool expected = summary.expect_sis_degeneracy && is_static_is;
    // Boundary-truth pools (F exactly 0 or 1, e.g. the no-match preset) are
    // exempt from the must-stay-healthy direction: with the match mass at an
    // extreme the optimal instrumental legitimately concentrates and even an
    // adaptive sampler's weight spread explodes — while its estimate pins
    // the boundary exactly, which the tolerance check above already proves.
    const bool boundary_truth =
        summary.true_f <= 0.0 || summary.true_f >= 1.0;
    if (expected || !boundary_truth) {
      report.checks.push_back(MakeCheck(
          "degeneracy-flag", summary.degeneracy_tripped == expected,
          std::string("monitor ") +
              (summary.degeneracy_tripped ? "tripped" : "healthy") +
              " (expected " + (expected ? "tripped" : "healthy") +
              "; ess_fraction=" + Num(summary.final_ess_fraction) +
              " max_weight_share=" + Num(summary.max_weight_share) + ")"));
    } else {
      report.checks.push_back(MakeCheck(
          "degeneracy-flag", true,
          "skipped: boundary-truth pool (F = " + Num(summary.true_f) +
              "), weight spread is uninformative"));
    }
  }

  report.passed = true;
  for (const VerifyCheck& check : report.checks) {
    report.passed = report.passed && check.passed;
  }
  return report;
}

}  // namespace experiments
}  // namespace oasis
