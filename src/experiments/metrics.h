#ifndef OASIS_EXPERIMENTS_METRICS_H_
#define OASIS_EXPERIMENTS_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "experiments/runner.h"

namespace oasis {
namespace experiments {

/// First budget at which `frac_defined` exceeds `level` (the paper plots
/// curves from the point where the estimate has >= 95% probability of being
/// well-defined); -1 when never reached.
int64_t FirstDefinedBudget(const ErrorCurve& curve, double level = 0.95);

/// Smallest budget at which the mean absolute error drops to `target` and
/// stays at or below it for the remainder of the curve; -1 when never.
/// This implements the "labels needed to reach a given estimate precision"
/// comparison behind the paper's headline label-saving percentages.
int64_t BudgetToReachError(const ErrorCurve& curve, double target);

/// Label-budget saving of `method` relative to `baseline` at error level
/// `target`: 1 - budget(method)/budget(baseline). Negative when the method
/// is worse; returns InvalidArgument when either curve never reaches the
/// target.
Result<double> LabelSaving(const ErrorCurve& method, const ErrorCurve& baseline,
                           double target);

/// Downsamples a curve to (approximately) `max_points` evenly spaced
/// checkpoints for compact text output.
ErrorCurve ThinCurve(const ErrorCurve& curve, size_t max_points);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_METRICS_H_
