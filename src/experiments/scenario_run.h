#ifndef OASIS_EXPERIMENTS_SCENARIO_RUN_H_
#define OASIS_EXPERIMENTS_SCENARIO_RUN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "datagen/scenario.h"
#include "experiments/config.h"
#include "experiments/runner.h"
#include "experiments/summary.h"

namespace oasis {
namespace experiments {

/// Controls for one scenario experiment — the run-side half of a run config
/// file (the scenario-side half is ScenarioSpec). Small by design: everything
/// here maps 1:1 onto RunnerOptions / TrajectoryOptions fields.
struct ScenarioRunOptions {
  /// Sampler to evaluate: "passive", "stratified", "is", or "oasis".
  std::string method = "oasis";
  /// Label budget per repeat.
  int64_t budget = 2000;
  /// Checkpoint spacing of the error curve.
  int64_t checkpoint_every = 100;
  /// Independent repeats to aggregate.
  int repeats = 20;
  /// Runner base seed (repeat r runs on Rng::Fork(seed, r)).
  uint64_t seed = 0x0a515u;
  /// Worker threads for the repeat fan-out; 0 = hardware concurrency.
  int num_threads = 0;
  /// Target stratum count for the stratified/oasis methods (CSF).
  int64_t target_strata = 30;
  /// OASIS step path ("oasis" method only): "fused" (default), "reference",
  /// "fenwick", "alias", or "sharded-fenwick". The sub-linear paths
  /// ("fenwick", "alias", "sharded-fenwick") are the practical choice for
  /// pool-scale runs (target_strata >= 100k); all paths estimate the same
  /// quantities (see OasisStepPath).
  std::string step_path = "fused";
  /// Oracle decorator stack built per repeat over the scenario oracle (see
  /// RunnerOptions::stack); empty = label straight against the base oracle.
  StackSpec stack;

  /// Structural validation (positive budget/repeats, known method name, ...).
  Status Validate() const;

  /// Reads the run keys (method, budget, checkpoint_every, repeats,
  /// run_seed, threads, strata, and the stack_* layer keys — see
  /// AppendStackSpecConfig for the full list) from `config`, leaving absent
  /// keys at their defaults. Does NOT call CheckAllKeysUsed — callers
  /// typically share the config with a ScenarioSpec and run the typo check
  /// once at the end.
  static Result<ScenarioRunOptions> FromConfig(const ConfigMap& config);
};

/// Builds a MethodSpec by CLI-facing name. "stratified" and "oasis" stratify
/// `pool`'s scores with CSF at `target_strata` internally; "passive" and
/// "is" ignore the stratum count. `step_path` selects the OASIS step path by
/// the ScenarioRunOptions::step_path names and is ignored by every other
/// method.
Result<MethodSpec> MakeMethodByName(const std::string& method, double alpha,
                                    const ScoredPool& pool,
                                    int64_t target_strata,
                                    const std::string& step_path = "fused");

/// Everything one scenario experiment produces: the error curve (for the
/// curves CSV) and the self-contained run summary (for the JSON sidecar and
/// oasis_verify).
struct ScenarioRunResult {
  /// The aggregated error curve of the configured method.
  ErrorCurve curve;
  /// The verification-ready summary, including per-repeat final estimates
  /// and the degeneracy probe's verdict.
  RunSummary summary;
};

/// Runs `options.method` on the scenario pool: a repeated error-curve run
/// against the pool's constructed truth, plus one probe trajectory (repeat
/// 0's RNG stream) whose DegeneracyMonitor verdict feeds the summary's
/// degeneracy fields. Deterministic: a pure function of (pool, options) at
/// any thread count.
Result<ScenarioRunResult> RunScenario(const datagen::ScenarioPool& pool,
                                      const ScenarioRunOptions& options);

/// Wraps an already-computed `curve` for (pool, options) into the
/// verification-ready ScenarioRunResult: fills every summary field from the
/// curve and runs the repeat-0 degeneracy probe. This is RunScenario minus
/// the error-curve run itself — the path for callers that produced the curve
/// elsewhere (the session server's per-session trajectories, aggregated by
/// oasis_serve) but want artifacts oasis_verify accepts.
Result<ScenarioRunResult> SummarizeScenarioCurve(
    const datagen::ScenarioPool& pool, const ScenarioRunOptions& options,
    ErrorCurve curve);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_SCENARIO_RUN_H_
