#include "experiments/summary.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace oasis {
namespace experiments {

namespace {

std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendNumberArray(std::ostringstream& out, const std::vector<double>& v) {
  out << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ',';
    out << JsonNumber(v[i]);
  }
  out << ']';
}

/// Token-level parser for the summary's own flat schema: one object whose
/// values are strings (no escapes needed — method/scenario names are plain),
/// numbers, booleans, or arrays of numbers.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  Status Parse() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      OASIS_ASSIGN_OR_RETURN(const std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key '" + key + "'");
      SkipSpace();
      OASIS_RETURN_NOT_OK(ParseValue(key));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) break;
      return Error("expected ',' or '}' after value of '" + key + "'");
    }
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

  Result<std::string> GetString(const std::string& key) const {
    auto it = strings_.find(key);
    if (it == strings_.end()) return Missing(key, "string");
    used_.insert(key);
    return it->second;
  }

  Result<double> GetNumber(const std::string& key) const {
    auto it = numbers_.find(key);
    if (it == numbers_.end()) return Missing(key, "number");
    used_.insert(key);
    return it->second;
  }

  Result<bool> GetBool(const std::string& key) const {
    auto it = bools_.find(key);
    if (it == bools_.end()) return Missing(key, "bool");
    used_.insert(key);
    return it->second;
  }

  Result<std::vector<double>> GetArray(const std::string& key) const {
    auto it = arrays_.find(key);
    if (it == arrays_.end()) return Missing(key, "array");
    used_.insert(key);
    return it->second;
  }

  /// Fails on any field never consumed by a getter — schema drift guard.
  Status CheckAllFieldsUsed() const {
    std::string unknown;
    auto check = [&](const std::string& key) {
      if (used_.count(key) == 0) {
        if (!unknown.empty()) unknown += ", ";
        unknown += "'" + key + "'";
      }
    };
    for (const auto& [key, value] : strings_) check(key);
    for (const auto& [key, value] : numbers_) check(key);
    for (const auto& [key, value] : bools_) check(key);
    for (const auto& [key, value] : arrays_) check(key);
    if (!unknown.empty()) {
      return Status::InvalidArgument("RunSummary JSON: unknown field(s): " +
                                     unknown);
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("RunSummary JSON: " + message +
                                   " at offset " + std::to_string(pos_));
  }

  static Status Missing(const std::string& key, const std::string& kind) {
    return Status::InvalidArgument("RunSummary JSON: missing " + kind +
                                   " field '" + key + "'");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Error("escapes are not supported");
      value.push_back(text_[pos_++]);
    }
    if (!Consume('"')) return Error("unterminated string");
    return value;
  }

  Result<double> ParseNumber() {
    const char* begin = text_.c_str() + pos_;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE) return Error("expected a number");
    pos_ += static_cast<size_t>(end - begin);
    return value;
  }

  Status ParseValue(const std::string& key) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') {
      OASIS_ASSIGN_OR_RETURN(strings_[key], ParseString());
      return Status::OK();
    }
    if (c == 't' || c == 'f') {
      const std::string word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) {
        return Error("expected true/false");
      }
      pos_ += word.size();
      bools_[key] = c == 't';
      return Status::OK();
    }
    if (c == '[') {
      ++pos_;
      std::vector<double> values;
      SkipSpace();
      if (!Consume(']')) {
        while (true) {
          OASIS_ASSIGN_OR_RETURN(const double value, ParseNumber());
          values.push_back(value);
          SkipSpace();
          if (Consume(',')) {
            SkipSpace();
            continue;
          }
          if (Consume(']')) break;
          return Error("expected ',' or ']' in array '" + key + "'");
        }
      }
      arrays_[key] = std::move(values);
      return Status::OK();
    }
    OASIS_ASSIGN_OR_RETURN(numbers_[key], ParseNumber());
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, std::string> strings_;
  std::map<std::string, double> numbers_;
  std::map<std::string, bool> bools_;
  std::map<std::string, std::vector<double>> arrays_;
  mutable std::set<std::string> used_;
};

}  // namespace

std::string RunSummaryToJson(const RunSummary& summary) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << summary.schema_version << ",\n";
  out << "  \"scenario\": \"" << summary.scenario << "\",\n";
  out << "  \"method\": \"" << summary.method << "\",\n";
  out << "  \"alpha\": " << JsonNumber(summary.alpha) << ",\n";
  out << "  \"pool_size\": " << summary.pool_size << ",\n";
  out << "  \"scenario_seed\": " << summary.scenario_seed << ",\n";
  out << "  \"run_seed\": " << summary.run_seed << ",\n";
  out << "  \"true_f\": " << JsonNumber(summary.true_f) << ",\n";
  out << "  \"budget\": " << summary.budget << ",\n";
  out << "  \"repeats\": " << summary.repeats << ",\n";
  out << "  \"final_mean_estimate\": " << JsonNumber(summary.final_mean_estimate)
      << ",\n";
  out << "  \"final_mean_abs_error\": "
      << JsonNumber(summary.final_mean_abs_error) << ",\n";
  out << "  \"final_stddev\": " << JsonNumber(summary.final_stddev) << ",\n";
  out << "  \"final_frac_defined\": " << JsonNumber(summary.final_frac_defined)
      << ",\n";
  out << "  \"expect_sis_degeneracy\": "
      << (summary.expect_sis_degeneracy ? "true" : "false") << ",\n";
  out << "  \"degeneracy_monitored\": "
      << (summary.degeneracy_monitored ? "true" : "false") << ",\n";
  out << "  \"degeneracy_tripped\": "
      << (summary.degeneracy_tripped ? "true" : "false") << ",\n";
  out << "  \"final_ess_fraction\": " << JsonNumber(summary.final_ess_fraction)
      << ",\n";
  out << "  \"max_weight_share\": " << JsonNumber(summary.max_weight_share)
      << ",\n";
  out << "  \"verify_tolerance\": " << JsonNumber(summary.verify_tolerance)
      << ",\n";
  out << "  \"final_estimates\": ";
  AppendNumberArray(out, summary.final_estimates);
  out << ",\n";
  out << "  \"final_defined\": [";
  for (size_t i = 0; i < summary.final_defined.size(); ++i) {
    if (i > 0) out << ',';
    out << int{summary.final_defined[i]};
  }
  out << "]\n";
  out << "}\n";
  return out.str();
}

Status WriteRunSummaryJson(const std::string& path, const RunSummary& summary) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("WriteRunSummaryJson: cannot open '" + path + "'");
  }
  out << RunSummaryToJson(summary);
  if (!out) {
    return Status::Internal("WriteRunSummaryJson: write failed for '" + path +
                            "'");
  }
  return Status::OK();
}

Result<RunSummary> ParseRunSummaryJson(const std::string& text) {
  FlatJsonParser parser(text);
  OASIS_RETURN_NOT_OK(parser.Parse());
  RunSummary summary;
  OASIS_ASSIGN_OR_RETURN(const double schema_version,
                         parser.GetNumber("schema_version"));
  summary.schema_version = static_cast<int64_t>(schema_version);
  if (summary.schema_version != 1) {
    return Status::InvalidArgument(
        "RunSummary JSON: unsupported schema_version " +
        std::to_string(summary.schema_version));
  }
  OASIS_ASSIGN_OR_RETURN(summary.scenario, parser.GetString("scenario"));
  OASIS_ASSIGN_OR_RETURN(summary.method, parser.GetString("method"));
  OASIS_ASSIGN_OR_RETURN(summary.alpha, parser.GetNumber("alpha"));
  OASIS_ASSIGN_OR_RETURN(const double pool_size,
                         parser.GetNumber("pool_size"));
  summary.pool_size = static_cast<int64_t>(pool_size);
  OASIS_ASSIGN_OR_RETURN(const double scenario_seed,
                         parser.GetNumber("scenario_seed"));
  summary.scenario_seed = static_cast<uint64_t>(scenario_seed);
  OASIS_ASSIGN_OR_RETURN(const double run_seed, parser.GetNumber("run_seed"));
  summary.run_seed = static_cast<uint64_t>(run_seed);
  OASIS_ASSIGN_OR_RETURN(summary.true_f, parser.GetNumber("true_f"));
  OASIS_ASSIGN_OR_RETURN(const double budget, parser.GetNumber("budget"));
  summary.budget = static_cast<int64_t>(budget);
  OASIS_ASSIGN_OR_RETURN(const double repeats, parser.GetNumber("repeats"));
  summary.repeats = static_cast<int64_t>(repeats);
  OASIS_ASSIGN_OR_RETURN(summary.final_mean_estimate,
                         parser.GetNumber("final_mean_estimate"));
  OASIS_ASSIGN_OR_RETURN(summary.final_mean_abs_error,
                         parser.GetNumber("final_mean_abs_error"));
  OASIS_ASSIGN_OR_RETURN(summary.final_stddev,
                         parser.GetNumber("final_stddev"));
  OASIS_ASSIGN_OR_RETURN(summary.final_frac_defined,
                         parser.GetNumber("final_frac_defined"));
  OASIS_ASSIGN_OR_RETURN(summary.expect_sis_degeneracy,
                         parser.GetBool("expect_sis_degeneracy"));
  OASIS_ASSIGN_OR_RETURN(summary.degeneracy_monitored,
                         parser.GetBool("degeneracy_monitored"));
  OASIS_ASSIGN_OR_RETURN(summary.degeneracy_tripped,
                         parser.GetBool("degeneracy_tripped"));
  OASIS_ASSIGN_OR_RETURN(summary.final_ess_fraction,
                         parser.GetNumber("final_ess_fraction"));
  OASIS_ASSIGN_OR_RETURN(summary.max_weight_share,
                         parser.GetNumber("max_weight_share"));
  OASIS_ASSIGN_OR_RETURN(summary.verify_tolerance,
                         parser.GetNumber("verify_tolerance"));
  OASIS_ASSIGN_OR_RETURN(summary.final_estimates,
                         parser.GetArray("final_estimates"));
  OASIS_ASSIGN_OR_RETURN(const std::vector<double> defined,
                         parser.GetArray("final_defined"));
  summary.final_defined.reserve(defined.size());
  for (double value : defined) {
    if (value != 0.0 && value != 1.0) {
      return Status::InvalidArgument(
          "RunSummary JSON: final_defined entries must be 0 or 1");
    }
    summary.final_defined.push_back(value != 0.0 ? 1 : 0);
  }
  if (summary.final_estimates.size() != summary.final_defined.size()) {
    return Status::InvalidArgument(
        "RunSummary JSON: final_estimates and final_defined lengths differ");
  }
  OASIS_RETURN_NOT_OK(parser.CheckAllFieldsUsed());
  return summary;
}

Result<RunSummary> ReadRunSummaryJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("ReadRunSummaryJson: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseRunSummaryJson(buffer.str());
}

}  // namespace experiments
}  // namespace oasis
