#ifndef OASIS_EXPERIMENTS_TIMING_H_
#define OASIS_EXPERIMENTS_TIMING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "experiments/runner.h"

namespace oasis {
namespace experiments {

/// CPU-time measurement of one estimation method — the data behind the
/// paper's Table 3 (average CPU time per run and per iteration).
struct TimingResult {
  std::string method;                      ///< Method name.
  double cpu_seconds_per_run = 0.0;        ///< Mean CPU time of one full run.
  double cpu_seconds_per_iteration = 0.0;  ///< Mean CPU time per iteration.
  /// Sampler construction time (instrumental-distribution setup etc.),
  /// excluded from the per-run figure, as the paper excludes strata
  /// precomputation.
  double cpu_setup_seconds = 0.0;
  int64_t iterations_per_run = 0;  ///< Iterations timed per run.
  int repeats = 0;                 ///< Number of timed runs averaged.
};

/// Runs the method `repeats` times for `iterations` sampling iterations each
/// (no budget cap, matching the paper's fixed-iteration timing protocol) and
/// reports mean CPU times measured with std::clock.
Result<TimingResult> TimeMethod(const MethodSpec& method, const ScoredPool& pool,
                                const Oracle& oracle, int64_t iterations,
                                int repeats, uint64_t base_seed);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_TIMING_H_
