#ifndef OASIS_EXPERIMENTS_CONFIG_H_
#define OASIS_EXPERIMENTS_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace experiments {

/// Minimal `key = value` configuration file shared by the apps/ CLI layer
/// (oasis_gen / oasis_run / oasis_sweep / oasis_verify) and the scenario
/// serialisation in src/datagen/scenario.h.
///
/// Format: one `key = value` pair per line; `#` starts a comment (full-line
/// or trailing); blank lines are ignored; keys and values are trimmed of
/// surrounding whitespace. Keys are unique — a duplicate key is a parse
/// error, not a silent override. Values keep internal whitespace (lists are
/// comma-separated by convention, see GetStringList).
///
/// The map records which keys were read so callers can reject typos: after
/// pulling every expected key, CheckAllKeysUsed() fails loudly on leftovers
/// instead of silently ignoring a misspelled option.
class ConfigMap {
 public:
  /// Parses `text` (the contents of a config file). Fails on malformed lines
  /// (no '='), empty keys, or duplicate keys.
  static Result<ConfigMap> Parse(const std::string& text);

  /// Reads and parses the file at `path`.
  static Result<ConfigMap> ParseFile(const std::string& path);

  /// Whether `key` is present.
  bool Has(const std::string& key) const;

  /// The raw value of `key`; fails with NotFound when absent.
  Result<std::string> GetString(const std::string& key) const;

  /// The value of `key`, or `fallback` when absent.
  std::string GetStringOr(const std::string& key, const std::string& fallback) const;

  /// The value parsed as int64; fails on absence or on trailing garbage.
  Result<int64_t> GetInt64(const std::string& key) const;

  /// Integer value with a default for absent keys (parse errors still fail).
  Result<int64_t> GetInt64Or(const std::string& key, int64_t fallback) const;

  /// The value parsed as double; fails on absence or non-numeric text.
  Result<double> GetDouble(const std::string& key) const;

  /// Double value with a default for absent keys (parse errors still fail).
  Result<double> GetDoubleOr(const std::string& key, double fallback) const;

  /// The value parsed as bool ("true"/"false"/"1"/"0", case-insensitive).
  Result<bool> GetBool(const std::string& key) const;

  /// Bool value with a default for absent keys (parse errors still fail).
  Result<bool> GetBoolOr(const std::string& key, bool fallback) const;

  /// The value split on commas with each element trimmed; empty elements are
  /// dropped. Absent key -> empty list.
  std::vector<std::string> GetStringList(const std::string& key) const;

  /// Fails with InvalidArgument naming every key that was never read by any
  /// getter — the typo guard every app runs after consuming its options.
  Status CheckAllKeysUsed() const;

  /// All keys in file order (diagnostics and serialisation round-trips).
  std::vector<std::string> Keys() const;

 private:
  struct Entry {
    /// The key as written in the file (trimmed).
    std::string key;
    /// The raw value (trimmed; list splitting happens in GetStringList).
    std::string value;
    /// Set by every getter; CheckAllKeysUsed reports entries never read.
    mutable bool used = false;
  };

  const Entry* Find(const std::string& key) const;

  std::vector<Entry> entries_;
};

/// Strips leading and trailing whitespace (shared with the CSV/JSON readers).
std::string TrimWhitespace(const std::string& text);

/// Parsed command line of an oasis_* app: positional operands plus
/// --key=value / --flag options, with the same used-key discipline as
/// ConfigMap — every accessor marks its flag as read, and
/// CheckAllFlagsUsed() rejects whatever no code path consumed, so a
/// misspelled option fails loudly instead of being ignored. This is the one
/// argv parser in the repo; the apps (gen/run/sweep/verify/serve) all build
/// on it via ParseCommonFlags below.
class CommandLine {
 public:
  /// Splits argv into positionals and --options. `--flag` (no '=') maps to
  /// the empty string. A repeated flag is a parse error, mirroring
  /// ConfigMap's duplicate-key rule.
  static Result<CommandLine> Parse(int argc, char** argv);

  /// Whether `--name` was given (marks it used).
  bool HasFlag(const std::string& name) const;

  /// The value of `--name=value`, or `fallback` when absent (marks it used).
  std::string FlagOr(const std::string& name, const std::string& fallback) const;

  /// `--name`'s value parsed as int64; `fallback` when absent, error on
  /// trailing garbage.
  Result<int64_t> FlagInt64Or(const std::string& name, int64_t fallback) const;

  /// `--name`'s value parsed as double; `fallback` when absent.
  Result<double> FlagDoubleOr(const std::string& name, double fallback) const;

  /// Fails with InvalidArgument naming every option no accessor read — the
  /// CLI-level twin of ConfigMap::CheckAllKeysUsed. Run it after all flag
  /// consumption (including ParseCommonFlags).
  Status CheckAllFlagsUsed() const;

  /// Positional operands in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Flag {
    std::string name;         ///< Without the leading dashes.
    std::string value;        ///< Empty for bare `--flag`.
    mutable bool used = false;  ///< Marked by the accessors (typo guard).
  };

  const Flag* Find(const std::string& name) const;

  std::vector<std::string> positional_;
  std::vector<Flag> flags_;
};

/// The flags every oasis_* app understands, with one shared semantics
/// (docs/TELEMETRY.md):
///   --metrics-out=<path>   write a metrics JSON snapshot on success
///   --trace-out=<path>     write a chrome://tracing JSON on success
///   --heartbeat=<seconds>  print a stderr progress line every N seconds
///   --no-telemetry         turn collection off entirely
///   --threads=<n>          worker threads (0 = hardware concurrency);
///                          overrides the config file's `threads` key
///   --seed=<n>             base RNG seed; overrides the config's seed key
struct CommonFlags {
  bool telemetry_enabled = true;  ///< False with --no-telemetry.
  std::string metrics_out;        ///< Empty = no metrics snapshot file.
  std::string trace_out;          ///< Empty = no trace file.
  double heartbeat_seconds = 0;   ///< 0 = no heartbeat.
  /// Set when --threads was given; apps fold it over their config value.
  std::optional<int64_t> threads;
  /// Set when --seed was given; apps fold it over their config value.
  std::optional<uint64_t> seed;
};

/// Parses the common flags out of `args`, validating each (--heartbeat > 0,
/// --threads >= 0, and --no-telemetry contradicting the output flags). Apps
/// consume their own extra flags before or after, then run
/// args.CheckAllFlagsUsed() so the typo guard covers both sets.
Result<CommonFlags> ParseCommonFlags(const CommandLine& args);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_CONFIG_H_
