#ifndef OASIS_EXPERIMENTS_CONFIG_H_
#define OASIS_EXPERIMENTS_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace experiments {

/// Minimal `key = value` configuration file shared by the apps/ CLI layer
/// (oasis_gen / oasis_run / oasis_sweep / oasis_verify) and the scenario
/// serialisation in src/datagen/scenario.h.
///
/// Format: one `key = value` pair per line; `#` starts a comment (full-line
/// or trailing); blank lines are ignored; keys and values are trimmed of
/// surrounding whitespace. Keys are unique — a duplicate key is a parse
/// error, not a silent override. Values keep internal whitespace (lists are
/// comma-separated by convention, see GetStringList).
///
/// The map records which keys were read so callers can reject typos: after
/// pulling every expected key, CheckAllKeysUsed() fails loudly on leftovers
/// instead of silently ignoring a misspelled option.
class ConfigMap {
 public:
  /// Parses `text` (the contents of a config file). Fails on malformed lines
  /// (no '='), empty keys, or duplicate keys.
  static Result<ConfigMap> Parse(const std::string& text);

  /// Reads and parses the file at `path`.
  static Result<ConfigMap> ParseFile(const std::string& path);

  /// Whether `key` is present.
  bool Has(const std::string& key) const;

  /// The raw value of `key`; fails with NotFound when absent.
  Result<std::string> GetString(const std::string& key) const;

  /// The value of `key`, or `fallback` when absent.
  std::string GetStringOr(const std::string& key, const std::string& fallback) const;

  /// The value parsed as int64; fails on absence or on trailing garbage.
  Result<int64_t> GetInt64(const std::string& key) const;

  /// Integer value with a default for absent keys (parse errors still fail).
  Result<int64_t> GetInt64Or(const std::string& key, int64_t fallback) const;

  /// The value parsed as double; fails on absence or non-numeric text.
  Result<double> GetDouble(const std::string& key) const;

  /// Double value with a default for absent keys (parse errors still fail).
  Result<double> GetDoubleOr(const std::string& key, double fallback) const;

  /// The value parsed as bool ("true"/"false"/"1"/"0", case-insensitive).
  Result<bool> GetBool(const std::string& key) const;

  /// Bool value with a default for absent keys (parse errors still fail).
  Result<bool> GetBoolOr(const std::string& key, bool fallback) const;

  /// The value split on commas with each element trimmed; empty elements are
  /// dropped. Absent key -> empty list.
  std::vector<std::string> GetStringList(const std::string& key) const;

  /// Fails with InvalidArgument naming every key that was never read by any
  /// getter — the typo guard every app runs after consuming its options.
  Status CheckAllKeysUsed() const;

  /// All keys in file order (diagnostics and serialisation round-trips).
  std::vector<std::string> Keys() const;

 private:
  struct Entry {
    /// The key as written in the file (trimmed).
    std::string key;
    /// The raw value (trimmed; list splitting happens in GetStringList).
    std::string value;
    /// Set by every getter; CheckAllKeysUsed reports entries never read.
    mutable bool used = false;
  };

  const Entry* Find(const std::string& key) const;

  std::vector<Entry> entries_;
};

/// Strips leading and trailing whitespace (shared with the CSV/JSON readers).
std::string TrimWhitespace(const std::string& text);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_CONFIG_H_
