#include "experiments/scenario_run.h"

#include <memory>
#include <utility>

#include "common/logging.h"

#include "oracle/label_cache.h"
#include "sampling/trajectory.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"

namespace oasis {
namespace experiments {

Status ScenarioRunOptions::Validate() const {
  if (method != "passive" && method != "stratified" && method != "is" &&
      method != "oasis") {
    return Status::InvalidArgument(
        "ScenarioRunOptions: unknown method '" + method +
        "' (expected passive, stratified, is, or oasis)");
  }
  if (budget <= 0) {
    return Status::InvalidArgument("ScenarioRunOptions: budget must be positive");
  }
  if (checkpoint_every <= 0 || checkpoint_every > budget) {
    return Status::InvalidArgument(
        "ScenarioRunOptions: checkpoint_every must lie in [1, budget]");
  }
  if (repeats <= 0) {
    return Status::InvalidArgument(
        "ScenarioRunOptions: repeats must be positive");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "ScenarioRunOptions: threads must be >= 0");
  }
  if (target_strata <= 0) {
    return Status::InvalidArgument(
        "ScenarioRunOptions: strata must be positive");
  }
  if (step_path != "fused" && step_path != "reference" &&
      step_path != "fenwick" && step_path != "alias" &&
      step_path != "sharded-fenwick") {
    return Status::InvalidArgument(
        "ScenarioRunOptions: unknown step_path '" + step_path +
        "' (expected fused, reference, fenwick, alias, or sharded-fenwick)");
  }
  return Status::OK();
}

Result<ScenarioRunOptions> ScenarioRunOptions::FromConfig(
    const ConfigMap& config) {
  ScenarioRunOptions options;
  options.method = config.GetStringOr("method", options.method);
  OASIS_ASSIGN_OR_RETURN(options.budget,
                         config.GetInt64Or("budget", options.budget));
  OASIS_ASSIGN_OR_RETURN(
      options.checkpoint_every,
      config.GetInt64Or("checkpoint_every", options.checkpoint_every));
  OASIS_ASSIGN_OR_RETURN(const int64_t repeats,
                         config.GetInt64Or("repeats", options.repeats));
  options.repeats = static_cast<int>(repeats);
  OASIS_ASSIGN_OR_RETURN(
      const int64_t seed,
      config.GetInt64Or("run_seed", static_cast<int64_t>(options.seed)));
  options.seed = static_cast<uint64_t>(seed);
  OASIS_ASSIGN_OR_RETURN(const int64_t threads,
                         config.GetInt64Or("threads", options.num_threads));
  options.num_threads = static_cast<int>(threads);
  OASIS_ASSIGN_OR_RETURN(options.target_strata,
                         config.GetInt64Or("strata", options.target_strata));
  options.step_path = config.GetStringOr("step_path", options.step_path);
  OASIS_ASSIGN_OR_RETURN(options.stack, StackSpecFromConfig(config, "stack_"));
  OASIS_RETURN_NOT_OK(options.Validate());
  return options;
}

namespace {

Result<OasisStepPath> StepPathFromName(const std::string& name) {
  if (name == "fused") return OasisStepPath::kFused;
  if (name == "reference") return OasisStepPath::kAllocatingReference;
  if (name == "fenwick") return OasisStepPath::kFenwick;
  if (name == "alias") return OasisStepPath::kAlias;
  if (name == "sharded-fenwick") return OasisStepPath::kShardedFenwick;
  return Status::InvalidArgument("unknown step_path '" + name + "'");
}

}  // namespace

Result<MethodSpec> MakeMethodByName(const std::string& method, double alpha,
                                    const ScoredPool& pool,
                                    int64_t target_strata,
                                    const std::string& step_path) {
  if (method == "passive") {
    return MakePassiveSpec(alpha);
  }
  if (method == "is") {
    ImportanceOptions options;
    options.alpha = alpha;
    return MakeImportanceSpec(options);
  }
  if (method == "stratified" || method == "oasis") {
    OASIS_ASSIGN_OR_RETURN(
        Strata strata,
        StratifyCsf(pool.scores, static_cast<size_t>(target_strata),
                    pool.scores_are_probabilities));
    auto shared = std::make_shared<const Strata>(std::move(strata));
    if (method == "stratified") {
      return MakeStratifiedSpec(alpha, std::move(shared));
    }
    OasisOptions options;
    options.alpha = alpha;
    OASIS_ASSIGN_OR_RETURN(options.step_path, StepPathFromName(step_path));
    return MakeOasisSpec(options, std::move(shared));
  }
  return Status::InvalidArgument("MakeMethodByName: unknown method '" + method +
                                 "'");
}

Result<ScenarioRunResult> SummarizeScenarioCurve(
    const datagen::ScenarioPool& pool, const ScenarioRunOptions& options,
    ErrorCurve curve) {
  OASIS_RETURN_NOT_OK(options.Validate());
  OASIS_ASSIGN_OR_RETURN(const std::unique_ptr<Oracle> oracle,
                         datagen::MakeScenarioOracle(pool));
  OASIS_ASSIGN_OR_RETURN(
      const MethodSpec method,
      MakeMethodByName(options.method, pool.spec.alpha, pool.scored,
                       options.target_strata, options.step_path));

  ScenarioRunResult result;
  RunSummary& summary = result.summary;
  summary.scenario = pool.spec.name;
  summary.method = curve.method;
  summary.alpha = pool.spec.alpha;
  summary.pool_size = pool.spec.pool_size;
  summary.scenario_seed = pool.spec.seed;
  summary.run_seed = options.seed;
  summary.true_f = pool.true_f;
  summary.budget = options.budget;
  summary.repeats = options.repeats;
  OASIS_CHECK(!curve.mean_estimate.empty());
  summary.final_mean_estimate = curve.mean_estimate.back();
  summary.final_mean_abs_error = curve.mean_abs_error.back();
  summary.final_stddev = curve.stddev.back();
  summary.final_frac_defined = curve.frac_defined.back();
  summary.expect_sis_degeneracy = pool.spec.expect_sis_degeneracy;
  summary.verify_tolerance = pool.spec.verify_tolerance;
  summary.final_estimates = curve.final_estimates;
  summary.final_defined = curve.final_defined;

  // Degeneracy probe: replay repeat 0's trajectory with direct access to the
  // sampler so the ACTUAL monitor verdict (not a mean-ESS reconstruction)
  // lands in the summary. Cheap relative to the repeated run behind `curve`.
  {
    TrajectoryOptions trajectory;
    trajectory.budget = options.budget;
    trajectory.checkpoint_every = options.checkpoint_every;
    LabelCache labels(oracle.get());
    OASIS_ASSIGN_OR_RETURN(
        const std::unique_ptr<Sampler> sampler,
        method.factory(&pool.scored, &labels, Rng::Fork(options.seed, 0)));
    OASIS_RETURN_NOT_OK(RunTrajectory(*sampler, trajectory).status());
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    if (monitor != nullptr) {
      summary.degeneracy_monitored = true;
      summary.degeneracy_tripped = monitor->degenerate();
      summary.final_ess_fraction = monitor->ess_fraction();
      summary.max_weight_share = monitor->max_weight_share();
    }
  }

  result.curve = std::move(curve);
  return result;
}

Result<ScenarioRunResult> RunScenario(const datagen::ScenarioPool& pool,
                                      const ScenarioRunOptions& options) {
  OASIS_RETURN_NOT_OK(options.Validate());
  OASIS_ASSIGN_OR_RETURN(const std::unique_ptr<Oracle> oracle,
                         datagen::MakeScenarioOracle(pool));
  OASIS_ASSIGN_OR_RETURN(
      const MethodSpec method,
      MakeMethodByName(options.method, pool.spec.alpha, pool.scored,
                       options.target_strata, options.step_path));

  RunnerOptions runner;
  runner.repeats = options.repeats;
  runner.base_seed = options.seed;
  runner.num_threads = options.num_threads;
  runner.trajectory.budget = options.budget;
  runner.trajectory.checkpoint_every = options.checkpoint_every;
  runner.stack = options.stack;
  OASIS_ASSIGN_OR_RETURN(
      ErrorCurve curve,
      RunErrorCurve(method, pool.scored, *oracle, pool.true_f, runner));
  return SummarizeScenarioCurve(pool, options, std::move(curve));
}

}  // namespace experiments
}  // namespace oasis
