#include "experiments/config.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace oasis {
namespace experiments {

std::string TrimWhitespace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<ConfigMap> ConfigMap::Parse(const std::string& text) {
  ConfigMap config;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = TrimWhitespace(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("ConfigMap: line " +
                                     std::to_string(line_number) +
                                     " is not 'key = value': '" + line + "'");
    }
    Entry entry;
    entry.key = TrimWhitespace(line.substr(0, eq));
    entry.value = TrimWhitespace(line.substr(eq + 1));
    if (entry.key.empty()) {
      return Status::InvalidArgument("ConfigMap: empty key at line " +
                                     std::to_string(line_number));
    }
    if (config.Find(entry.key) != nullptr) {
      return Status::InvalidArgument("ConfigMap: duplicate key '" + entry.key +
                                     "' at line " + std::to_string(line_number));
    }
    config.entries_.push_back(std::move(entry));
  }
  return config;
}

Result<ConfigMap> ConfigMap::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("ConfigMap: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  OASIS_ASSIGN_OR_RETURN(ConfigMap config, Parse(buffer.str()));
  return config;
}

const ConfigMap::Entry* ConfigMap::Find(const std::string& key) const {
  for (const Entry& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

bool ConfigMap::Has(const std::string& key) const { return Find(key) != nullptr; }

Result<std::string> ConfigMap::GetString(const std::string& key) const {
  const Entry* entry = Find(key);
  if (entry == nullptr) {
    return Status::NotFound("ConfigMap: missing key '" + key + "'");
  }
  entry->used = true;
  return entry->value;
}

std::string ConfigMap::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const Entry* entry = Find(key);
  if (entry == nullptr) return fallback;
  entry->used = true;
  return entry->value;
}

Result<int64_t> ConfigMap::GetInt64(const std::string& key) const {
  OASIS_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("ConfigMap: key '" + key +
                                   "' is not an integer: '" + raw + "'");
  }
  return static_cast<int64_t>(value);
}

Result<int64_t> ConfigMap::GetInt64Or(const std::string& key,
                                      int64_t fallback) const {
  if (!Has(key)) return fallback;
  return GetInt64(key);
}

Result<double> ConfigMap::GetDouble(const std::string& key) const {
  OASIS_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("ConfigMap: key '" + key +
                                   "' is not a number: '" + raw + "'");
  }
  return value;
}

Result<double> ConfigMap::GetDoubleOr(const std::string& key,
                                      double fallback) const {
  if (!Has(key)) return fallback;
  return GetDouble(key);
}

Result<bool> ConfigMap::GetBool(const std::string& key) const {
  OASIS_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  std::string lowered;
  for (char c : raw) lowered.push_back(static_cast<char>(std::tolower(
      static_cast<unsigned char>(c))));
  if (lowered == "true" || lowered == "1") return true;
  if (lowered == "false" || lowered == "0") return false;
  return Status::InvalidArgument("ConfigMap: key '" + key +
                                 "' is not a bool: '" + raw + "'");
}

Result<bool> ConfigMap::GetBoolOr(const std::string& key, bool fallback) const {
  if (!Has(key)) return fallback;
  return GetBool(key);
}

std::vector<std::string> ConfigMap::GetStringList(const std::string& key) const {
  std::vector<std::string> items;
  const Entry* entry = Find(key);
  if (entry == nullptr) return items;
  entry->used = true;
  std::string current;
  for (char c : entry->value) {
    if (c == ',') {
      const std::string trimmed = TrimWhitespace(current);
      if (!trimmed.empty()) items.push_back(trimmed);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string trimmed = TrimWhitespace(current);
  if (!trimmed.empty()) items.push_back(trimmed);
  return items;
}

Status ConfigMap::CheckAllKeysUsed() const {
  std::string unused;
  for (const Entry& entry : entries_) {
    if (!entry.used) {
      if (!unused.empty()) unused += ", ";
      unused += "'" + entry.key + "'";
    }
  }
  if (!unused.empty()) {
    return Status::InvalidArgument("ConfigMap: unknown key(s): " + unused);
  }
  return Status::OK();
}

std::vector<std::string> ConfigMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) keys.push_back(entry.key);
  return keys;
}

Result<CommandLine> CommandLine::Parse(int argc, char** argv) {
  CommandLine args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args.positional_.push_back(arg);
      continue;
    }
    Flag flag;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flag.name = arg.substr(2);
    } else {
      flag.name = arg.substr(2, eq - 2);
      flag.value = arg.substr(eq + 1);
    }
    if (flag.name.empty()) {
      return Status::InvalidArgument("bad option '" + arg + "'");
    }
    if (args.Find(flag.name) != nullptr) {
      return Status::InvalidArgument("option '--" + flag.name +
                                     "' given twice");
    }
    args.flags_.push_back(std::move(flag));
  }
  return args;
}

const CommandLine::Flag* CommandLine::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool CommandLine::HasFlag(const std::string& name) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return false;
  flag->used = true;
  return true;
}

std::string CommandLine::FlagOr(const std::string& name,
                                const std::string& fallback) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return fallback;
  flag->used = true;
  return flag->value;
}

Result<int64_t> CommandLine::FlagInt64Or(const std::string& name,
                                         int64_t fallback) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return fallback;
  flag->used = true;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(flag->value.c_str(), &end, 10);
  if (end == flag->value.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("option '--" + name +
                                   "' is not an integer: '" + flag->value +
                                   "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> CommandLine::FlagDoubleOr(const std::string& name,
                                         double fallback) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return fallback;
  flag->used = true;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(flag->value.c_str(), &end);
  if (end == flag->value.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("option '--" + name +
                                   "' is not a number: '" + flag->value + "'");
  }
  return value;
}

Status CommandLine::CheckAllFlagsUsed() const {
  std::string unused;
  for (const Flag& flag : flags_) {
    if (!flag.used) {
      if (!unused.empty()) unused += ", ";
      unused += "'--" + flag.name + "'";
    }
  }
  if (!unused.empty()) {
    return Status::InvalidArgument("unknown option(s): " + unused);
  }
  return Status::OK();
}

Result<CommonFlags> ParseCommonFlags(const CommandLine& args) {
  CommonFlags flags;
  flags.telemetry_enabled = !args.HasFlag("no-telemetry");
  flags.metrics_out = args.FlagOr("metrics-out", "");
  flags.trace_out = args.FlagOr("trace-out", "");
  OASIS_ASSIGN_OR_RETURN(flags.heartbeat_seconds,
                         args.FlagDoubleOr("heartbeat", 0.0));
  if (args.HasFlag("heartbeat") && flags.heartbeat_seconds <= 0.0) {
    return Status::InvalidArgument(
        "--heartbeat wants a positive number of seconds");
  }
  if (args.HasFlag("threads")) {
    OASIS_ASSIGN_OR_RETURN(const int64_t threads,
                           args.FlagInt64Or("threads", 0));
    if (threads < 0) {
      return Status::InvalidArgument("--threads must be >= 0 (0 = hardware "
                                     "concurrency)");
    }
    flags.threads = threads;
  }
  if (args.HasFlag("seed")) {
    OASIS_ASSIGN_OR_RETURN(const int64_t seed, args.FlagInt64Or("seed", 0));
    flags.seed = static_cast<uint64_t>(seed);
  }
  if (!flags.telemetry_enabled &&
      (!flags.metrics_out.empty() || !flags.trace_out.empty() ||
       flags.heartbeat_seconds > 0.0)) {
    return Status::InvalidArgument(
        "--no-telemetry contradicts --metrics-out/--trace-out/--heartbeat");
  }
  return flags;
}

}  // namespace experiments
}  // namespace oasis
