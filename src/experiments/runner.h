#ifndef OASIS_EXPERIMENTS_RUNNER_H_
#define OASIS_EXPERIMENTS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/oasis.h"
#include "oracle/oracle.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "sampling/sampler.h"
#include "sampling/stratified.h"
#include "sampling/trajectory.h"
#include "strata/strata.h"

namespace oasis {
namespace experiments {

/// Factory that instantiates one fresh sampler per repeated run. The runner
/// supplies a per-repeat LabelCache and an independent RNG stream.
using SamplerFactory = std::function<Result<std::unique_ptr<Sampler>>(
    const ScoredPool* pool, LabelCache* labels, Rng rng)>;

/// A named estimation method for experiment harnesses.
struct MethodSpec {
  std::string name;
  SamplerFactory factory;
};

/// Standard method constructors matching the paper's comparison set.
MethodSpec MakePassiveSpec(double alpha);
MethodSpec MakeStratifiedSpec(double alpha, std::shared_ptr<const Strata> strata);
MethodSpec MakeImportanceSpec(const ImportanceOptions& options);
MethodSpec MakeOasisSpec(const OasisOptions& options,
                         std::shared_ptr<const Strata> strata);

/// Aggregated error statistics of one method on one pool, indexed by label
/// budget — the data behind each curve of the paper's Figure 2.
struct ErrorCurve {
  std::string method;
  std::vector<int64_t> budgets;
  /// E|F-hat - F| over repeats whose estimate was defined at the checkpoint.
  std::vector<double> mean_abs_error;
  /// Standard deviation of the estimates across (defined) repeats.
  std::vector<double> stddev;
  std::vector<double> mean_estimate;
  /// Fraction of repeats whose estimate was defined at the checkpoint; the
  /// paper starts plotting once this exceeds 0.95.
  std::vector<double> frac_defined;
  int repeats = 0;
};

/// Controls for repeated trajectory runs.
struct RunnerOptions {
  int repeats = 100;
  TrajectoryOptions trajectory;
  uint64_t base_seed = 0x0a515u;
  /// 0 = hardware concurrency.
  int num_threads = 0;
};

/// Runs `method` on the pool `options.repeats` times (fresh LabelCache and
/// RNG stream per repeat, fanned out over threads) and aggregates estimate
/// error statistics against the reference value `true_f`.
///
/// The oracle must be stateless across Label() calls (all oracles in this
/// library are) since repeats share it concurrently.
Result<ErrorCurve> RunErrorCurve(const MethodSpec& method, const ScoredPool& pool,
                                 Oracle& oracle, double true_f,
                                 const RunnerOptions& options);

/// Final-budget summary of a method (used by the Figure 5 harness):
/// mean +- CI of |F-hat - F| after the full budget.
struct FinalErrorSummary {
  std::string method;
  double mean_abs_error = 0.0;
  double ci_half_width = 0.0;  // 95% normal CI on the mean.
  double frac_defined = 0.0;
  int repeats = 0;
};

/// Runs repeats and summarises only the final-budget error.
Result<FinalErrorSummary> RunFinalError(const MethodSpec& method,
                                        const ScoredPool& pool, Oracle& oracle,
                                        double true_f, const RunnerOptions& options);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_RUNNER_H_
