#ifndef OASIS_EXPERIMENTS_RUNNER_H_
#define OASIS_EXPERIMENTS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/oasis.h"
#include "oracle/oracle.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "sampling/sampler.h"
#include "sampling/stratified.h"
#include "sampling/trajectory.h"
#include "strata/strata.h"

namespace oasis {
namespace experiments {

/// Factory that instantiates one fresh sampler per repeated run. The runner
/// supplies a per-repeat LabelCache and an independent RNG stream.
using SamplerFactory = std::function<Result<std::unique_ptr<Sampler>>(
    const ScoredPool* pool, LabelCache* labels, Rng rng)>;

/// A named estimation method for experiment harnesses.
struct MethodSpec {
  std::string name;
  SamplerFactory factory;
};

/// Standard method constructors matching the paper's comparison set.
MethodSpec MakePassiveSpec(double alpha);
MethodSpec MakeStratifiedSpec(double alpha, std::shared_ptr<const Strata> strata);
MethodSpec MakeImportanceSpec(const ImportanceOptions& options);
MethodSpec MakeOasisSpec(const OasisOptions& options,
                         std::shared_ptr<const Strata> strata);

/// Aggregated error statistics of one method on one pool, indexed by label
/// budget — the data behind each curve of the paper's Figure 2.
struct ErrorCurve {
  std::string method;
  std::vector<int64_t> budgets;
  /// E|F-hat - F| over repeats whose estimate was defined at the checkpoint.
  std::vector<double> mean_abs_error;
  /// Standard deviation of the estimates across (defined) repeats.
  std::vector<double> stddev;
  std::vector<double> mean_estimate;
  /// Fraction of repeats whose estimate was defined at the checkpoint; the
  /// paper starts plotting once this exceeds 0.95.
  std::vector<double> frac_defined;
  int repeats = 0;
};

/// Controls for repeated trajectory runs.
struct RunnerOptions {
  int repeats = 100;
  TrajectoryOptions trajectory;
  uint64_t base_seed = 0x0a515u;
  /// Worker threads for the repeat fan-out; 0 = hardware concurrency. The
  /// aggregate is bit-identical for every value (per-repeat RNG streams are
  /// counter-derived via Rng::Fork and results are reduced in repeat order).
  int num_threads = 0;
  /// Optional progress hook, called once per finished repeat with
  /// (completed, total). Invoked concurrently from worker threads — the
  /// callback must be thread-safe and should be cheap; `completed` is a
  /// running count, not an ordering guarantee.
  std::function<void(int completed, int total)> progress;
  /// Optional cooperative cancellation. When the token fires mid-run the
  /// runner stops scheduling repeats and returns Status::Cancelled (partial
  /// results are discarded). The token must outlive the call.
  const CancellationToken* cancel = nullptr;
};

/// Runs `method` on the pool `options.repeats` times (fresh LabelCache and
/// counter-derived RNG stream per repeat, sharded across a work-stealing
/// thread pool) and aggregates estimate error statistics against the
/// reference value `true_f`.
///
/// Determinism: repeat r always runs on Rng::Fork(base_seed, r) and per-repeat
/// results are folded in repeat order after the fan-out, so the returned
/// curve is bit-identical for any num_threads (and to the historical
/// sequential runner). Errors are deterministic too: when several repeats
/// fail, the status of the lowest-indexed failing repeat is returned.
///
/// The oracle is shared immutably across worker threads (Oracle::Label is
/// const); each repeat owns its LabelCache, sampler, and RNG.
Result<ErrorCurve> RunErrorCurve(const MethodSpec& method, const ScoredPool& pool,
                                 const Oracle& oracle, double true_f,
                                 const RunnerOptions& options);

/// Final-budget summary of a method (used by the Figure 5 harness):
/// mean +- CI of |F-hat - F| after the full budget.
struct FinalErrorSummary {
  std::string method;
  double mean_abs_error = 0.0;
  double ci_half_width = 0.0;  // 95% normal CI on the mean.
  double frac_defined = 0.0;
  int repeats = 0;
};

/// Runs repeats and summarises only the final-budget error.
Result<FinalErrorSummary> RunFinalError(const MethodSpec& method,
                                        const ScoredPool& pool,
                                        const Oracle& oracle, double true_f,
                                        const RunnerOptions& options);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_RUNNER_H_
