#ifndef OASIS_EXPERIMENTS_RUNNER_H_
#define OASIS_EXPERIMENTS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/oasis.h"
#include "experiments/config.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/remote_oracle.h"
#include "oracle/retry_policy.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "sampling/sampler.h"
#include "sampling/stratified.h"
#include "sampling/trajectory.h"
#include "strata/strata.h"
#include "telemetry/heartbeat.h"

namespace oasis {

/// \namespace oasis::experiments
/// Experiment harness layer: repeated-trajectory runners, convergence
/// diagnostics, CSV/report output and timing — everything behind the paper's
/// figures and tables.
namespace experiments {

/// Factory that instantiates one fresh sampler per repeated run. The runner
/// supplies a per-repeat LabelCache and an independent RNG stream.
using SamplerFactory = std::function<Result<std::unique_ptr<Sampler>>(
    const ScoredPool* pool, LabelCache* labels, Rng rng)>;

/// A named estimation method for experiment harnesses.
struct MethodSpec {
  std::string name;        ///< Display name ("Passive", "OASIS-30", ...).
  SamplerFactory factory;  ///< Builds one sampler per repeat.
};

/// Passive (uniform) sampling method spec.
MethodSpec MakePassiveSpec(double alpha);
/// Proportional stratified sampling method spec over a shared stratification.
MethodSpec MakeStratifiedSpec(double alpha, std::shared_ptr<const Strata> strata);
/// Static importance sampling method spec.
MethodSpec MakeImportanceSpec(const ImportanceOptions& options);
/// OASIS (adaptive importance sampling) method spec over a shared
/// stratification.
MethodSpec MakeOasisSpec(const OasisOptions& options,
                         std::shared_ptr<const Strata> strata);

/// Aggregated error statistics of one method on one pool, indexed by label
/// budget — the data behind each curve of the paper's Figure 2.
struct ErrorCurve {
  /// Method name ("Passive", "OASIS-30", ...).
  std::string method;
  /// Checkpoint label budgets (the curve's x axis).
  std::vector<int64_t> budgets;
  /// E|F-hat - F| over repeats whose estimate was defined at the checkpoint.
  std::vector<double> mean_abs_error;
  /// Standard deviation of the estimates across (defined) repeats.
  std::vector<double> stddev;
  /// Mean estimate across (defined) repeats.
  std::vector<double> mean_estimate;
  /// Fraction of repeats whose estimate was defined at the checkpoint; the
  /// paper starts plotting once this exceeds 0.95.
  std::vector<double> frac_defined;
  /// Number of repeats aggregated.
  int repeats = 0;

  /// True when the run priced labels through RunnerOptions::remote_oracle:
  /// the three cost series below are populated (same length as budgets) and
  /// give alternative x axes — error against simulated round trips, hours,
  /// or dollars instead of bare label counts.
  bool has_remote_cost = false;
  /// Mean (over repeats) cumulative round trips at each checkpoint.
  std::vector<double> mean_round_trips;
  /// Mean (over repeats) cumulative simulated latency, seconds.
  std::vector<double> mean_simulated_seconds;
  /// Mean (over repeats) cumulative monetary label cost.
  std::vector<double> mean_label_cost;

  /// True when the run retried oracle failures (RunnerOptions::retry_policy):
  /// the two recovery series below are populated (same length as budgets) —
  /// how much repair work the fault-tolerant stack did to deliver the error
  /// statistics above (docs/FAULT_MODEL.md).
  bool has_fault_stats = false;
  /// Mean (over repeats) cumulative retry attempts at each checkpoint.
  std::vector<double> mean_retries;
  /// Mean (over repeats) cumulative gave-up oracle calls at each checkpoint.
  std::vector<double> mean_give_ups;

  /// True when the method's sampler exposes a DegeneracyMonitor: `mean_ess`
  /// is populated (same length as budgets).
  bool has_degeneracy_stats = false;
  /// Mean (over repeats) effective sample size at each checkpoint.
  std::vector<double> mean_ess;

  /// Per-repeat F-hat at the FINAL checkpoint, in repeat order (length ==
  /// repeats). The raw material behind cross-repeat dispersion statistics —
  /// empirical CI coverage in particular (src/experiments/verify.h) needs
  /// the individual estimates, not just their mean/stddev above.
  std::vector<double> final_estimates;
  /// 1 where the corresponding final_estimates entry was defined, else 0
  /// (and the estimate value is meaningless). Same length as final_estimates.
  std::vector<uint8_t> final_defined;
};

/// Observability controls of one RunErrorCurve call (docs/TELEMETRY.md).
/// Telemetry is strictly observe-only: the returned ErrorCurve is
/// bit-identical whatever these are set to, at any thread count.
struct RunnerTelemetryOptions {
  /// Turn the process-wide telemetry runtime switch on for the duration of
  /// the call (restored afterwards). Counters/spans accumulate into
  /// telemetry::DefaultRegistry() / DefaultTraceCollector().
  bool enable = false;
  /// When > 0 (and `enable`), print a progress heartbeat line to stderr
  /// every this many wall-clock seconds while the run is in flight.
  double heartbeat_interval_seconds = 0.0;
};

/// Controls for repeated trajectory runs.
struct RunnerOptions {
  /// Number of independent repeats to aggregate.
  int repeats = 100;
  /// Budget/checkpoint schedule of each repeat.
  TrajectoryOptions trajectory;
  /// Base seed; repeat r runs on Rng::Fork(base_seed, r).
  uint64_t base_seed = 0x0a515u;
  /// Worker threads for the repeat fan-out; 0 = hardware concurrency. The
  /// aggregate is bit-identical for every value (per-repeat RNG streams are
  /// counter-derived via Rng::Fork and results are reduced in repeat order).
  int num_threads = 0;
  /// Optional progress hook, called once per finished repeat with
  /// (completed, total). Invoked concurrently from worker threads — the
  /// callback must be thread-safe and should be cheap; `completed` is a
  /// running count, not an ordering guarantee.
  std::function<void(int completed, int total)> progress;
  /// Optional cooperative cancellation. When the token fires mid-run the
  /// runner stops scheduling repeats and returns Status::Cancelled (partial
  /// results are discarded). The token must outlive the call.
  const CancellationToken* cancel = nullptr;
  /// Declarative per-repeat oracle decorator stack. Each repeat r builds an
  /// independent stack over the caller's oracle via
  /// OracleStackBuilder(stack).ForkSeeds(r), so chaos/jitter streams are
  /// decorrelated across repeats while each stays a pure function of
  /// (options, repeat index). Layer semantics (see StackSpec and
  /// docs/ORACLES.md / docs/FAULT_MODEL.md):
  ///  * stack.remote — every repeat's labels are priced through a per-repeat
  ///    RemoteOracle; the ErrorCurve carries cost columns (has_remote_cost).
  ///    Labels are unchanged, so the error statistics are bit-identical to
  ///    an unwrapped run at any num_threads.
  ///  * stack.share_labels — with stack.remote and a deterministic RNG-free
  ///    oracle, all repeats fetch through one run-wide SharedLabelStore: an
  ///    item labelled in ANY repeat is never re-fetched over the simulated
  ///    wire. Error statistics are unaffected; the cost columns drop but
  ///    become scheduling-dependent at num_threads > 1 (SharedLabelStore).
  ///  * stack.fault_injection — a per-repeat FaultInjectingOracle spliced
  ///    UNDER the remote layer. Pair with stack.retry so the run recovers:
  ///    with transient-only faults and retries on, the error statistics are
  ///    bit-identical to a fault-free run. Without retries, injected
  ///    failures propagate out as the lowest failing repeat's status.
  ///  * stack.retry — a per-repeat RetryingOracle topping the stack (backoff
  ///    charged into the repeat's remote clock when present); the ErrorCurve
  ///    carries retries/give_ups columns (has_fault_stats).
  StackSpec stack;
  /// DEPRECATED alias of stack.remote — merged by EffectiveStackSpec (the
  /// alias applies only when stack.remote is unset). Prefer `stack`.
  std::optional<RemoteOracleOptions> remote_oracle;
  /// DEPRECATED alias of stack.share_labels (ORed in). Prefer `stack`.
  bool remote_share_labels = false;
  /// DEPRECATED alias of stack.fault_injection — merged by
  /// EffectiveStackSpec when stack.fault_injection is unset. Prefer `stack`.
  std::optional<FaultInjectionOptions> fault_injection;
  /// DEPRECATED alias of stack.retry — merged by EffectiveStackSpec when
  /// stack.retry is unset. Prefer `stack`.
  std::optional<RetryPolicy> retry_policy;
  /// Observability of this run (metrics, spans, heartbeat). Observe-only —
  /// never affects the returned curve.
  RunnerTelemetryOptions telemetry;
};

/// The stack the runner actually builds per repeat: `options.stack` with the
/// deprecated alias fields (remote_oracle / remote_share_labels /
/// fault_injection / retry_policy) folded in. A layer set in both places
/// resolves to the `stack` value.
StackSpec EffectiveStackSpec(const RunnerOptions& options);

/// Reads a StackSpec from `prefix`-prefixed config keys, leaving absent
/// layers unset (see AppendStackSpecConfig for the key list). Like
/// ScenarioRunOptions::FromConfig, does NOT run the unused-key check.
Result<StackSpec> StackSpecFromConfig(const ConfigMap& config,
                                      const std::string& prefix = "stack_");

/// Serialises `spec` as `key = value` config lines (only the layers that are
/// set), appended to `out`. Keys, with the default prefix: stack_fault,
/// stack_fault_transient_rate, stack_fault_timeout_rate,
/// stack_fault_item_drop_rate, stack_fault_outage_after, stack_fault_seed;
/// stack_remote, stack_remote_round_trip_seconds,
/// stack_remote_per_item_seconds, stack_remote_cost_per_label,
/// stack_remote_jitter_fraction, stack_remote_jitter_seed,
/// stack_remote_max_items_per_trip; stack_retry, stack_retry_max_attempts,
/// stack_retry_initial_backoff_seconds, stack_retry_backoff_multiplier,
/// stack_retry_max_backoff_seconds, stack_retry_jitter_fraction,
/// stack_retry_jitter_seed, stack_retry_per_attempt_timeout_seconds,
/// stack_retry_overall_deadline_seconds, stack_retry_breaker_threshold,
/// stack_retry_breaker_cooldown_calls; stack_share_labels. Round-trips
/// value-exactly through StackSpecFromConfig.
void AppendStackSpecConfig(const StackSpec& spec, const std::string& prefix,
                           std::string* out);

/// Runs `method` on the pool `options.repeats` times (fresh LabelCache and
/// counter-derived RNG stream per repeat, sharded across a work-stealing
/// thread pool) and aggregates estimate error statistics against the
/// reference value `true_f`.
///
/// Determinism: repeat r always runs on Rng::Fork(base_seed, r) and per-repeat
/// results are folded in repeat order after the fan-out, so the returned
/// curve is bit-identical for any num_threads (and to the historical
/// sequential runner). Errors are deterministic too: when several repeats
/// fail, the status of the lowest-indexed failing repeat is returned.
///
/// The oracle is shared immutably across worker threads (Oracle::Label is
/// const); each repeat owns its LabelCache, sampler, and RNG.
Result<ErrorCurve> RunErrorCurve(const MethodSpec& method, const ScoredPool& pool,
                                 const Oracle& oracle, double true_f,
                                 const RunnerOptions& options);

/// Final-budget summary of a method (used by the Figure 5 harness):
/// mean +- CI of |F-hat - F| after the full budget.
struct FinalErrorSummary {
  std::string method;           ///< Method name.
  double mean_abs_error = 0.0;  ///< Mean |F-hat - F| at the final budget.
  double ci_half_width = 0.0;   ///< 95% normal CI half-width on the mean.
  double frac_defined = 0.0;    ///< Fraction of repeats with a defined F-hat.
  int repeats = 0;              ///< Number of repeats aggregated.
};

/// Runs repeats and summarises only the final-budget error.
Result<FinalErrorSummary> RunFinalError(const MethodSpec& method,
                                        const ScoredPool& pool,
                                        const Oracle& oracle, double true_f,
                                        const RunnerOptions& options);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_RUNNER_H_
