#ifndef OASIS_EXPERIMENTS_CSV_H_
#define OASIS_EXPERIMENTS_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "experiments/runner.h"
#include "sampling/sampler.h"

namespace oasis {
namespace experiments {

/// Writes an evaluation pool (score, prediction, and optionally truth) to a
/// CSV file with header `score,prediction[,truth]`. Intended for exchanging
/// pools with external tooling (plotting, the authors' Python package, ...).
Status WritePoolCsv(const std::string& path, const ScoredPool& pool,
                    const std::vector<uint8_t>* truth = nullptr);

/// Parsed pool file: the pool plus the truth column when present.
struct LoadedPool {
  ScoredPool pool;             ///< Scores and predictions.
  std::vector<uint8_t> truth;  ///< Empty when the file has no truth column.
  bool has_truth = false;      ///< Whether a truth column was present.
};

/// Reads a pool from a CSV written by WritePoolCsv (or any file with a
/// `score,prediction[,truth]` header). Scores are declared probabilities
/// when every value lies in [0, 1].
Result<LoadedPool> ReadPoolCsv(const std::string& path);

/// Writes error curves in long format:
/// `method,labels,mean_abs_error,stddev,mean_estimate,frac_defined`.
/// When any curve carries remote-oracle cost columns (ErrorCurve::
/// has_remote_cost), three columns `round_trips,sim_seconds,label_cost` are
/// appended — the mean cumulative cost of reaching each checkpoint — with
/// empty cells for curves that were not priced (see docs/ORACLES.md).
/// Fault-tolerant runs append `retries,give_ups` (ErrorCurve::
/// has_fault_stats) and weight-monitored samplers append `ess`
/// (has_degeneracy_stats) the same way (see docs/FAULT_MODEL.md).
Status WriteCurvesCsv(const std::string& path,
                      const std::vector<ErrorCurve>& curves);

/// Reads curves back from a CSV written by WriteCurvesCsv: consecutive rows
/// with the same method name form one curve, and the optional cost / fault /
/// ess columns are restored when (and only when) the header carries them.
/// The per-repeat fields that never travel through the CSV (repeats,
/// final_estimates) come back empty — oasis_verify reads those from the run
/// summary JSON instead.
Result<std::vector<ErrorCurve>> ReadCurvesCsv(const std::string& path);

/// Splits one CSV line on commas (no quoting support — the pool format
/// is purely numeric). Exposed for tests.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_CSV_H_
