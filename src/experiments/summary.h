#ifndef OASIS_EXPERIMENTS_SUMMARY_H_
#define OASIS_EXPERIMENTS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace oasis {
namespace experiments {

/// Machine-readable result of one scenario run — the contract between
/// oasis_run (which writes it next to the curves CSV) and oasis_verify
/// (which replays the statistical checks from it without re-running the
/// experiment). Everything a verifier needs travels here: the constructed
/// truth, the aggregate final-budget statistics, and the raw per-repeat
/// final estimates that empirical CI coverage is computed from.
///
/// Serialised as a flat JSON object (WriteRunSummaryJson); the golden-schema
/// test locks the field set, so additions must extend — never rename or
/// reorder — the schema.
struct RunSummary {
  /// Schema version stamp; bumped when the field set changes.
  int64_t schema_version = 1;
  /// Scenario name the run was generated from.
  std::string scenario;
  /// Sampler method name ("Passive", "IS", "OASIS-30", ...).
  std::string method;
  /// F-measure weight alpha of the run.
  double alpha = 0.5;
  /// Pool size of the scenario.
  int64_t pool_size = 0;
  /// Scenario generation seed.
  uint64_t scenario_seed = 0;
  /// Runner base seed (repeat r ran on Rng::Fork(run_seed, r)).
  uint64_t run_seed = 0;
  /// The scenario's exact constructed target value of F_alpha.
  double true_f = 0.0;
  /// Label budget of each repeat.
  int64_t budget = 0;
  /// Number of independent repeats aggregated.
  int64_t repeats = 0;

  /// Mean final-budget estimate across defined repeats.
  double final_mean_estimate = 0.0;
  /// Mean |F-hat - F| at the final budget across defined repeats.
  double final_mean_abs_error = 0.0;
  /// Cross-repeat standard deviation of the final estimates.
  double final_stddev = 0.0;
  /// Fraction of repeats with a defined final estimate.
  double final_frac_defined = 0.0;

  /// Whether the scenario was constructed to degenerate a static importance
  /// sampler (ScenarioSpec::expect_sis_degeneracy, copied through).
  bool expect_sis_degeneracy = false;
  /// Whether the method's sampler exposes a DegeneracyMonitor at all
  /// (false for Passive/Stratified — the degeneracy fields below are
  /// meaningless then).
  bool degeneracy_monitored = false;
  /// Whether the probe run's DegeneracyMonitor reported degenerate() after
  /// the full budget.
  bool degeneracy_tripped = false;
  /// The probe run's final ESS fraction (ESS / observations).
  double final_ess_fraction = 0.0;
  /// The probe run's final max-weight share of total mass.
  double max_weight_share = 0.0;

  /// |F-hat - F| tolerance the scenario declares for verification.
  double verify_tolerance = 0.0;

  /// Final-budget F-hat per repeat, in repeat order (length == repeats).
  std::vector<double> final_estimates;
  /// 1 where the matching final_estimates entry was defined, else 0.
  std::vector<uint8_t> final_defined;
};

/// Writes `summary` to `path` as a flat JSON object. Numbers use %.17g so
/// the write/read round trip is value-exact.
Status WriteRunSummaryJson(const std::string& path, const RunSummary& summary);

/// Reads a summary back from a file written by WriteRunSummaryJson. The
/// parser covers exactly this schema (flat object of strings, numbers, bools
/// and numeric arrays) — it is not a general JSON reader. Unknown fields are
/// an error so schema drift surfaces loudly; missing fields fail too.
Result<RunSummary> ReadRunSummaryJson(const std::string& path);

/// Parses a summary from in-memory JSON text (the file-free core of
/// ReadRunSummaryJson; exposed for tests).
Result<RunSummary> ParseRunSummaryJson(const std::string& text);

/// Serialises a summary to JSON text (the file-free core of
/// WriteRunSummaryJson; exposed for tests and the golden-schema lock).
std::string RunSummaryToJson(const RunSummary& summary);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_SUMMARY_H_
