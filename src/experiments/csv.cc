#include "experiments/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace oasis {
namespace experiments {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

Status WritePoolCsv(const std::string& path, const ScoredPool& pool,
                    const std::vector<uint8_t>* truth) {
  OASIS_RETURN_NOT_OK(pool.Validate());
  if (truth != nullptr &&
      static_cast<int64_t>(truth->size()) != pool.size()) {
    return Status::InvalidArgument("WritePoolCsv: truth size mismatch");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("WritePoolCsv: cannot open '" + path + "'");
  }
  out << (truth != nullptr ? "score,prediction,truth\n" : "score,prediction\n");
  char buffer[64];
  for (int64_t i = 0; i < pool.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.17g",
                  pool.scores[static_cast<size_t>(i)]);
    out << buffer << ',' << int{pool.predictions[static_cast<size_t>(i)]};
    if (truth != nullptr) out << ',' << int{(*truth)[static_cast<size_t>(i)]};
    out << '\n';
  }
  if (!out) {
    return Status::Internal("WritePoolCsv: write failed for '" + path + "'");
  }
  return Status::OK();
}

Result<LoadedPool> ReadPoolCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("ReadPoolCsv: cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("ReadPoolCsv: empty file");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 2 || header[0] != "score" || header[1] != "prediction") {
    return Status::InvalidArgument(
        "ReadPoolCsv: expected header 'score,prediction[,truth]'");
  }
  const bool has_truth = header.size() >= 3 && header[2] == "truth";

  LoadedPool loaded;
  loaded.has_truth = has_truth;
  bool all_unit_interval = true;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() < (has_truth ? 3u : 2u)) {
      return Status::InvalidArgument("ReadPoolCsv: short row at line " +
                                     std::to_string(line_number));
    }
    errno = 0;
    char* end = nullptr;
    const double score = std::strtod(cells[0].c_str(), &end);
    if (end == cells[0].c_str() || errno == ERANGE) {
      return Status::InvalidArgument("ReadPoolCsv: bad score at line " +
                                     std::to_string(line_number));
    }
    const std::string& pred = cells[1];
    if (pred != "0" && pred != "1") {
      return Status::InvalidArgument("ReadPoolCsv: bad prediction at line " +
                                     std::to_string(line_number));
    }
    loaded.pool.scores.push_back(score);
    loaded.pool.predictions.push_back(pred == "1" ? 1 : 0);
    if (score < 0.0 || score > 1.0) all_unit_interval = false;
    if (has_truth) {
      const std::string& truth = cells[2];
      if (truth != "0" && truth != "1") {
        return Status::InvalidArgument("ReadPoolCsv: bad truth at line " +
                                       std::to_string(line_number));
      }
      loaded.truth.push_back(truth == "1" ? 1 : 0);
    }
  }
  if (loaded.pool.scores.empty()) {
    return Status::InvalidArgument("ReadPoolCsv: no data rows");
  }
  loaded.pool.scores_are_probabilities = all_unit_interval;
  loaded.pool.threshold = all_unit_interval ? 0.5 : 0.0;
  OASIS_RETURN_NOT_OK(loaded.pool.Validate());
  return loaded;
}

Status WriteCurvesCsv(const std::string& path,
                      const std::vector<ErrorCurve>& curves) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("WriteCurvesCsv: cannot open '" + path + "'");
  }
  // Cost-curve output format: when any curve was priced through a remote
  // oracle, three extra columns carry the mean cumulative round trips,
  // simulated latency (seconds) and monetary label cost at each checkpoint;
  // curves without cost data leave those cells empty. Fault-tolerant runs
  // (RunnerOptions::retry_policy) add mean cumulative retries/give_ups
  // columns the same way, and samplers with a degeneracy monitor add a mean
  // per-checkpoint ESS column. Without any of those, the header and rows are
  // the historical six columns, unchanged.
  bool any_remote = false;
  bool any_fault = false;
  bool any_degeneracy = false;
  for (const ErrorCurve& curve : curves) {
    any_remote |= curve.has_remote_cost;
    any_fault |= curve.has_fault_stats;
    any_degeneracy |= curve.has_degeneracy_stats;
  }
  out << "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined";
  if (any_remote) out << ",round_trips,sim_seconds,label_cost";
  if (any_fault) out << ",retries,give_ups";
  if (any_degeneracy) out << ",ess";
  out << '\n';
  for (const ErrorCurve& curve : curves) {
    for (size_t i = 0; i < curve.budgets.size(); ++i) {
      out << curve.method << ',' << curve.budgets[i] << ','
          << curve.mean_abs_error[i] << ',' << curve.stddev[i] << ','
          << curve.mean_estimate[i] << ',' << curve.frac_defined[i];
      if (any_remote) {
        if (curve.has_remote_cost) {
          out << ',' << curve.mean_round_trips[i] << ','
              << curve.mean_simulated_seconds[i] << ','
              << curve.mean_label_cost[i];
        } else {
          out << ",,,";
        }
      }
      if (any_fault) {
        if (curve.has_fault_stats) {
          out << ',' << curve.mean_retries[i] << ',' << curve.mean_give_ups[i];
        } else {
          out << ",,";
        }
      }
      if (any_degeneracy) {
        if (curve.has_degeneracy_stats) {
          out << ',' << curve.mean_ess[i];
        } else {
          out << ',';
        }
      }
      out << '\n';
    }
  }
  if (!out) {
    return Status::Internal("WriteCurvesCsv: write failed for '" + path + "'");
  }
  return Status::OK();
}

namespace {

Result<double> ParseCsvDouble(const std::string& cell, size_t line_number) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("ReadCurvesCsv: bad number '" + cell +
                                   "' at line " + std::to_string(line_number));
  }
  return value;
}

}  // namespace

Result<std::vector<ErrorCurve>> ReadCurvesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("ReadCurvesCsv: cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("ReadCurvesCsv: empty file");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  const std::vector<std::string> required = {
      "method", "labels", "mean_abs_error", "stddev", "mean_estimate",
      "frac_defined"};
  if (header.size() < required.size()) {
    return Status::InvalidArgument("ReadCurvesCsv: short header");
  }
  for (size_t i = 0; i < required.size(); ++i) {
    if (header[i] != required[i]) {
      return Status::InvalidArgument("ReadCurvesCsv: expected column '" +
                                     required[i] + "', found '" + header[i] +
                                     "'");
    }
  }
  // Optional column groups appear in WriteCurvesCsv order; resolve each
  // group's starting index from the header rather than assuming which groups
  // are present.
  size_t next = required.size();
  size_t remote_at = 0;
  bool has_remote = false;
  if (next + 3 <= header.size() && header[next] == "round_trips") {
    has_remote = true;
    remote_at = next;
    next += 3;
  }
  size_t fault_at = 0;
  bool has_fault = false;
  if (next + 2 <= header.size() && header[next] == "retries") {
    has_fault = true;
    fault_at = next;
    next += 2;
  }
  size_t ess_at = 0;
  bool has_ess = false;
  if (next < header.size() && header[next] == "ess") {
    has_ess = true;
    ess_at = next;
    next += 1;
  }
  if (next != header.size()) {
    return Status::InvalidArgument("ReadCurvesCsv: unexpected column '" +
                                   header[next] + "'");
  }

  std::vector<ErrorCurve> curves;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("ReadCurvesCsv: row width mismatch at line " +
                                     std::to_string(line_number));
    }
    if (curves.empty() || curves.back().method != cells[0]) {
      curves.emplace_back();
      curves.back().method = cells[0];
    }
    ErrorCurve& curve = curves.back();
    OASIS_ASSIGN_OR_RETURN(const double labels,
                           ParseCsvDouble(cells[1], line_number));
    curve.budgets.push_back(static_cast<int64_t>(labels));
    OASIS_ASSIGN_OR_RETURN(const double mean_abs_error,
                           ParseCsvDouble(cells[2], line_number));
    curve.mean_abs_error.push_back(mean_abs_error);
    OASIS_ASSIGN_OR_RETURN(const double stddev,
                           ParseCsvDouble(cells[3], line_number));
    curve.stddev.push_back(stddev);
    OASIS_ASSIGN_OR_RETURN(const double mean_estimate,
                           ParseCsvDouble(cells[4], line_number));
    curve.mean_estimate.push_back(mean_estimate);
    OASIS_ASSIGN_OR_RETURN(const double frac_defined,
                           ParseCsvDouble(cells[5], line_number));
    curve.frac_defined.push_back(frac_defined);
    if (has_remote && !cells[remote_at].empty()) {
      curve.has_remote_cost = true;
      OASIS_ASSIGN_OR_RETURN(const double trips,
                             ParseCsvDouble(cells[remote_at], line_number));
      curve.mean_round_trips.push_back(trips);
      OASIS_ASSIGN_OR_RETURN(const double seconds,
                             ParseCsvDouble(cells[remote_at + 1], line_number));
      curve.mean_simulated_seconds.push_back(seconds);
      OASIS_ASSIGN_OR_RETURN(const double cost,
                             ParseCsvDouble(cells[remote_at + 2], line_number));
      curve.mean_label_cost.push_back(cost);
    }
    if (has_fault && !cells[fault_at].empty()) {
      curve.has_fault_stats = true;
      OASIS_ASSIGN_OR_RETURN(const double retries,
                             ParseCsvDouble(cells[fault_at], line_number));
      curve.mean_retries.push_back(retries);
      OASIS_ASSIGN_OR_RETURN(const double give_ups,
                             ParseCsvDouble(cells[fault_at + 1], line_number));
      curve.mean_give_ups.push_back(give_ups);
    }
    if (has_ess && !cells[ess_at].empty()) {
      curve.has_degeneracy_stats = true;
      OASIS_ASSIGN_OR_RETURN(const double ess,
                             ParseCsvDouble(cells[ess_at], line_number));
      curve.mean_ess.push_back(ess);
    }
  }
  if (curves.empty()) {
    return Status::InvalidArgument("ReadCurvesCsv: no data rows");
  }
  return curves;
}

}  // namespace experiments
}  // namespace oasis
