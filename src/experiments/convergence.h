#ifndef OASIS_EXPERIMENTS_CONVERGENCE_H_
#define OASIS_EXPERIMENTS_CONVERGENCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/oasis.h"

namespace oasis {
namespace experiments {

/// Model-convergence diagnostics of a single OASIS run — the four panels of
/// the paper's Figure 4, indexed by consumed label budget:
///  (a) |F-hat - F|;
///  (b) mean |pi-hat_k - pi_k| over strata;
///  (c) mean |v_k(t) - v*_k| over strata;
///  (d) KL(v* || v(t)).
struct ConvergenceTrace {
  std::vector<int64_t> budgets;       ///< Checkpoint label budgets (x axis).
  std::vector<double> f_abs_error;    ///< Panel (a): |F-hat - F|.
  std::vector<double> pi_abs_error;   ///< Panel (b): mean |pi-hat_k - pi_k|.
  std::vector<double> v_abs_error;    ///< Panel (c): mean |v_k(t) - v*_k|.
  std::vector<double> kl_divergence;  ///< Panel (d): KL(v* || v(t)).
};

/// Runs `sampler` until `budget` labels are consumed, recording diagnostics
/// every `checkpoint_every` labels. `truth` is the per-item ground truth
/// (one 0/1 entry per pool item) from which the true per-stratum pi and the
/// true optimal instrumental distribution v* are computed; `true_f` is the
/// pool-level F-measure.
Result<ConvergenceTrace> TraceOasisConvergence(OasisSampler& sampler,
                                               std::span<const uint8_t> truth,
                                               double true_f, int64_t budget,
                                               int64_t checkpoint_every);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_CONVERGENCE_H_
