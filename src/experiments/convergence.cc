#include "experiments/convergence.h"

#include <cmath>

#include "core/instrumental.h"
#include "stats/kl_divergence.h"
#include "stats/transforms.h"

namespace oasis {
namespace experiments {

Result<ConvergenceTrace> TraceOasisConvergence(OasisSampler& sampler,
                                               std::span<const uint8_t> truth,
                                               double true_f, int64_t budget,
                                               int64_t checkpoint_every) {
  if (budget <= 0 || checkpoint_every <= 0) {
    return Status::InvalidArgument("TraceOasisConvergence: bad budget/checkpoint");
  }
  if (static_cast<int64_t>(truth.size()) != sampler.pool().size()) {
    return Status::InvalidArgument("TraceOasisConvergence: truth size mismatch");
  }

  const Strata& strata = sampler.strata();
  const std::vector<double> true_pi = strata.MeanPerStratum(truth);

  // Reference optimal instrumental distribution from the true quantities,
  // with the same epsilon-greedy floor the sampler applies.
  OASIS_ASSIGN_OR_RETURN(
      std::vector<double> v_star_raw,
      OptimalStratifiedInstrumental(strata.weights(), sampler.lambda(), true_pi,
                                    true_f, sampler.options().alpha));
  OASIS_ASSIGN_OR_RETURN(
      std::vector<double> v_star,
      EpsilonGreedyMix(strata.weights(), v_star_raw, sampler.options().epsilon));

  ConvergenceTrace trace;
  int64_t next_checkpoint = checkpoint_every;
  const int64_t max_iterations = 50 * budget + 100000;
  while (sampler.labels_consumed() < budget &&
         sampler.iterations() < max_iterations) {
    OASIS_RETURN_NOT_OK(sampler.Step());
    if (sampler.labels_consumed() < next_checkpoint) continue;

    const EstimateSnapshot snap = sampler.Estimate();
    const std::vector<double> pi_hat = sampler.PosteriorMeans();
    OASIS_ASSIGN_OR_RETURN(std::vector<double> v_now, sampler.CurrentInstrumental());
    OASIS_ASSIGN_OR_RETURN(double kl, KlDivergence(v_star, v_now));

    trace.budgets.push_back(sampler.labels_consumed());
    trace.f_abs_error.push_back(
        snap.f_defined ? std::abs(snap.f_alpha - true_f) : 1.0);
    trace.pi_abs_error.push_back(MeanAbsoluteDifference(pi_hat, true_pi));
    trace.v_abs_error.push_back(MeanAbsoluteDifference(v_now, v_star));
    trace.kl_divergence.push_back(kl);
    next_checkpoint += checkpoint_every;
  }
  return trace;
}

}  // namespace experiments
}  // namespace oasis
