#ifndef OASIS_EXPERIMENTS_VERIFY_H_
#define OASIS_EXPERIMENTS_VERIFY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "experiments/runner.h"
#include "experiments/summary.h"

namespace oasis {
namespace experiments {

/// Thresholds of the statistical self-verification harness. Defaults are
/// banded for CI stability at ~20 repeats: tight enough to fail a broken
/// estimator outright (tests/scenario_verify_test.cc proves it), loose
/// enough that an honest run never flakes.
struct VerifyOptions {
  /// Nominal level of the per-repeat normal interval used by the coverage
  /// check (covered_r iff |F-hat_r - F| <= z(level) * sigma-hat).
  double ci_level = 0.95;
  /// Empirical coverage must land in [coverage_min, coverage_max]. The lower
  /// edge sits ~3 binomial sigmas under the nominal level at 20 repeats.
  double coverage_min = 0.80;
  /// Upper coverage edge (1.0 = never fail for over-coverage).
  double coverage_max = 1.0;
  /// Repeats needed before the coverage check is meaningful; with fewer
  /// defined repeats it is skipped (reported as passed, flagged in detail).
  int64_t coverage_min_repeats = 10;
  /// Minimum fraction of repeats whose final estimate was defined.
  double min_frac_defined = 0.9;
  /// Error-decay band: final mean |error| must be <= decay_factor * first
  /// checkpoint's mean |error| + decay_slack.
  double decay_factor = 1.0;
  /// Absolute slack of the decay band (absorbs noise when both ends are
  /// already near zero).
  double decay_slack = 0.01;
  /// When > 0, overrides the summary's scenario-declared |F-hat - F|
  /// tolerance.
  double tolerance_override = 0.0;
  /// Tolerance for recomputing the summary's aggregate statistics from its
  /// per-repeat raw estimates (an internal-consistency audit of the file).
  double aggregate_tolerance = 1e-9;
};

/// Outcome of one verification check.
struct VerifyCheck {
  /// Stable check identifier ("estimate-tolerance", "ci-coverage", ...).
  std::string name;
  /// Whether the check passed.
  bool passed = false;
  /// Human-readable evidence line (measured value vs band).
  std::string detail;
};

/// The full verification verdict for one run.
struct VerifyReport {
  /// Scenario name from the summary.
  std::string scenario;
  /// Method name from the summary.
  std::string method;
  /// Every check that ran, in execution order.
  std::vector<VerifyCheck> checks;
  /// True when every check passed.
  bool passed = false;

  /// Multi-line human-readable rendering (one PASS/FAIL line per check).
  std::string Render() const;
};

/// Runs the statistical checks against a run summary (and, when `curve` is
/// non-null, the matching error curve for the decay check):
///
///  1. aggregate-consistency — the summary's final mean/stddev/frac_defined
///     reproduce from its raw per-repeat estimates (file-integrity audit).
///  2. estimate-defined    — enough repeats ended with a defined estimate.
///  3. estimate-tolerance  — |final mean F-hat - true F| within the band.
///  4. ci-coverage         — the empirical coverage of the nominal normal
///     interval across repeats lands in the configured band.
///  5. error-decay         — the curve's final mean |error| is no worse than
///     the banded first checkpoint (skipped without a curve).
///  6. degeneracy-flag     — a monitored sampler's degeneracy verdict matches
///     the scenario's expectation: pools built to break static IS must trip
///     the IS monitor, every other (method, pool) pairing must stay healthy.
///
/// Always returns a report (never fails on a mere check failure); a
/// non-verifiable file (e.g. no repeats) is an error.
Result<VerifyReport> VerifyRun(const RunSummary& summary,
                               const ErrorCurve* curve,
                               const VerifyOptions& options);

}  // namespace experiments
}  // namespace oasis

#endif  // OASIS_EXPERIMENTS_VERIFY_H_
