#include "experiments/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "experiments/metrics.h"

namespace oasis {
namespace experiments {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule_len += widths[c] + (c > 0 ? 2 : 0);
  out += std::string(rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

std::string FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatScientific(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", precision, value);
  return buffer;
}

std::string FormatCount(int64_t value) {
  const std::string digits = std::to_string(value);
  const size_t sign = digits[0] == '-' ? 1 : 0;
  std::string out;
  for (size_t i = 0; i < digits.size(); ++i) {
    // Insert a separator whenever a group of three digits starts, counting
    // from the right and skipping the sign position.
    if (i > sign && (digits.size() - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

void PrintCurves(std::ostream& os, const std::vector<ErrorCurve>& curves,
                 double defined_level, size_t max_rows) {
  if (curves.empty()) return;
  std::vector<ErrorCurve> thinned;
  thinned.reserve(curves.size());
  for (const ErrorCurve& curve : curves) {
    thinned.push_back(ThinCurve(curve, max_rows));
  }

  std::vector<std::string> headers{"labels"};
  for (const ErrorCurve& curve : thinned) {
    headers.push_back(curve.method + " abs.err");
    headers.push_back(curve.method + " std.dev");
  }
  TextTable table(std::move(headers));

  const size_t rows = thinned[0].budgets.size();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells{FormatCount(thinned[0].budgets[r])};
    for (const ErrorCurve& curve : thinned) {
      if (r < curve.budgets.size() && curve.frac_defined[r] >= defined_level) {
        cells.push_back(FormatDouble(curve.mean_abs_error[r]));
        cells.push_back(FormatDouble(curve.stddev[r]));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    table.AddRow(std::move(cells));
  }
  table.Print(os);
}

}  // namespace experiments
}  // namespace oasis
