#ifndef OASIS_SERVICE_CLIENT_H_
#define OASIS_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/protocol.h"
#include "service/session_manager.h"

namespace oasis {
namespace service {

/// One request/response exchange over some byte channel. The protocol layer
/// is already socket-ready (pure line-framed bytes, no in-process pointers);
/// a transport only moves those bytes. InProcessTransport below serves them
/// to a SessionManager in the same process; a socket transport would write
/// the request bytes to a connection and read the reply.
class Transport {
 public:
  virtual ~Transport() = default;  ///< Subclassed by every byte channel.

  /// Sends one serialised request, returns the serialised response. Fails
  /// only on channel-level problems — a server-side error still succeeds
  /// here, carrying an error_reply message in the returned bytes.
  virtual Result<std::string> RoundTrip(const std::string& request_bytes) = 0;
};

/// Serves requests to a SessionManager in the same process — through the
/// FULL wire encoding on both legs, so every in-process exchange exercises
/// exactly the bytes a socket peer would see (the round trip is what the CI
/// serve-smoke and the session-server tests drive end to end).
class InProcessTransport : public Transport {
 public:
  /// `manager` must outlive the transport.
  explicit InProcessTransport(SessionManager* manager) : manager_(manager) {}

  /// Parses, dispatches to the manager, and re-serialises the response —
  /// the full wire encoding on both legs.
  Result<std::string> RoundTrip(const std::string& request_bytes) override;

 private:
  SessionManager* manager_;
};

/// Typed client over a Transport: builds protocol messages, round-trips
/// them, and maps error_reply responses back into Status (via
/// ErrorReplyToStatus), so callers program against Result<T> like any other
/// library API. Not thread-safe per instance; clients are cheap — use one
/// per thread.
class ServiceClient {
 public:
  /// `transport` must outlive the client.
  explicit ServiceClient(Transport* transport) : transport_(transport) {}

  /// Starts a session, returning its id.
  Result<int64_t> Start(const SessionSpec& spec);
  /// Advances a session by at least `labels` charged labels (<= 0: run to
  /// the session's full budget), waiting for the result.
  Result<LabelArrived> RequestLabels(int64_t session, int64_t labels);
  /// Queues an advance on the server and returns immediately; a later
  /// GetEstimate / GetCheckpoint / Close settles it.
  Status EnqueueLabels(int64_t session, int64_t labels);
  /// Current estimate state of a session.
  Result<EstimateReport> GetEstimate(int64_t session);
  /// Checkpointed trajectory of a session so far.
  Result<CheckpointAck> GetCheckpoint(int64_t session);
  /// Closes a session, returning its final state.
  Result<EstimateReport> Close(int64_t session);

 private:
  /// Serialise -> round trip -> parse; error_reply becomes an error Status.
  Result<Response> Call(const Request& request);
  /// Call() plus the expected-response-type check.
  template <typename T>
  Result<T> Expect(const Request& request);

  Transport* transport_;
};

}  // namespace service
}  // namespace oasis

#endif  // OASIS_SERVICE_CLIENT_H_
