#ifndef OASIS_SERVICE_PROTOCOL_H_
#define OASIS_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "oracle/oracle_stack.h"

namespace oasis {

/// \namespace oasis::service
/// Evaluation-as-a-service layer: a SessionManager hosting many concurrent
/// evaluation sessions in one process, a versioned request/response message
/// protocol, and an in-process transport/client pair (docs/SERVICE.md).
namespace service {

/// Protocol version stamp carried by every message. A parser only accepts
/// its own version — bump on any wire-visible change, like
/// RunSummary::schema_version.
inline constexpr int64_t kProtocolVersion = 1;

/// Everything that defines one evaluation session — the payload of
/// StartSession. A session is the service twin of one experiment-runner
/// repeat: `stream` plays the repeat index, so a session started with
/// (seed, stream) = (base_seed, r) reproduces batch repeat r bit for bit
/// (see docs/SERVICE.md, "Determinism contract").
struct SessionSpec {
  /// Scenario catalogue name ("stripe-f90", ...) naming the pool and oracle
  /// backend; sessions over the same scenario share one backend.
  std::string scenario;
  /// Sampler method: "passive", "stratified", "is", or "oasis".
  std::string method = "oasis";
  /// Label budget of the session.
  int64_t budget = 1000;
  /// Estimate-snapshot spacing (the session's checkpoint grid).
  int64_t checkpoint_every = 100;
  /// Target stratum count for the stratified/oasis methods.
  int64_t strata = 30;
  /// Base seed; the session's sampler runs on Rng::Fork(seed, stream).
  uint64_t seed = 0x0a515u;
  /// Stream index decorrelating sibling sessions (the repeat index of the
  /// batch runner's determinism discipline). Also forks the stack's chaos /
  /// jitter seeds via OracleStackBuilder::ForkSeeds.
  uint64_t stream = 0;
  /// Per-session oracle decorator stack (built via OracleStackBuilder).
  StackSpec stack;
};

/// Request: create a session. Response: SessionStarted (or ErrorReply).
struct StartSession {
  /// The session to create.
  SessionSpec spec;
};

/// Request: advance a session by (at least) `labels` charged labels.
/// Stepping follows the batch runner's trajectory loop exactly, which never
/// splits a checkpoint batch — so the label count may overshoot the request
/// by up to checkpoint_every, and the session's estimate sequence is
/// independent of how callers slice their requests. Response: LabelArrived
/// when `wait`, LabelsEnqueued otherwise (the advance then runs
/// asynchronously on the server's thread pool; a later GetEstimate /
/// Checkpoint / CloseSession settles it first).
struct RequestLabels {
  /// Target session id.
  int64_t session = 0;
  /// Labels to charge; <= 0 means run to the session's full budget.
  int64_t labels = 0;
  /// Synchronous (LabelArrived now) vs enqueued (LabelsEnqueued now,
  /// labelling happens on the pool).
  bool wait = true;
};

/// Request: the session's current estimate. Response: EstimateReply.
struct GetEstimate {
  /// Target session id.
  int64_t session = 0;
};

/// Request: the session's checkpointed trajectory so far. Response:
/// CheckpointAck.
struct Checkpoint {
  /// Target session id.
  int64_t session = 0;
};

/// Request: close (and free) a session. Response: SessionClosed with the
/// final state; closing an unfinished session reports whatever it reached.
struct CloseSession {
  /// Target session id.
  int64_t session = 0;
};

/// Any client-to-server message.
using Request =
    std::variant<StartSession, RequestLabels, GetEstimate, Checkpoint,
                 CloseSession>;

/// Response to StartSession.
struct SessionStarted {
  /// The new session's id (unique within the server's lifetime).
  int64_t session = 0;
};

/// Response to RequestLabels with wait = false: the advance is queued.
struct LabelsEnqueued {
  /// The session the work was queued for.
  int64_t session = 0;
};

/// A session's observable estimate state — the shared body of LabelArrived /
/// EstimateReply / SessionClosed.
struct EstimateReport {
  /// The reporting session.
  int64_t session = 0;
  /// Labels charged to the session's budget so far.
  int64_t labels_consumed = 0;
  /// Sampling iterations performed so far.
  int64_t iterations = 0;
  /// Current F_alpha estimate (meaningless while !f_defined).
  double f_alpha = 0.0;
  /// Whether F_alpha is defined yet.
  bool f_defined = false;
  /// Current precision estimate (meaningless while !precision_defined).
  double precision = 0.0;
  /// Whether the precision estimate is defined.
  bool precision_defined = false;
  /// Current recall estimate (meaningless while !recall_defined).
  double recall = 0.0;
  /// Whether the recall estimate is defined.
  bool recall_defined = false;
  /// Whether the session finished (budget exhausted or truncated).
  bool done = false;
  /// Whether the iteration cap fired before the budget was exhausted.
  bool truncated = false;
};

/// Response to a waited RequestLabels: the requested labels arrived.
struct LabelArrived {
  /// State after the advance.
  EstimateReport report;
  /// Labels charged by THIS advance (report.labels_consumed is cumulative).
  int64_t labels_charged = 0;
};

/// Response to GetEstimate.
struct EstimateReply {
  /// Current state.
  EstimateReport report;
};

/// Response to Checkpoint: the per-checkpoint estimate trajectory so far —
/// the session-mode equivalent of one repeat's row block in the batch
/// runner's ErrorCurve (identical values, by the determinism contract).
struct CheckpointAck {
  /// The reporting session.
  int64_t session = 0;
  /// Labels charged so far.
  int64_t labels_consumed = 0;
  /// Whether the session finished.
  bool done = false;
  /// Whether the iteration cap fired.
  bool truncated = false;
  /// Checkpoint budgets reached so far (prefix of the session's grid; the
  /// full grid once done — trailing checkpoints then repeat the final
  /// estimate, exactly like RunTrajectory's early-stop fill).
  std::vector<int64_t> budgets;
  /// F_alpha at each reached checkpoint (parallel to budgets).
  std::vector<double> f_alpha;
  /// 1 where the matching f_alpha was defined, else 0.
  std::vector<uint8_t> f_defined;
};

/// Response to CloseSession.
struct SessionClosed {
  /// Final state at close.
  EstimateReport report;
};

/// Error response to any request (parse failures, unknown sessions, failed
/// advances, ...).
struct ErrorReply {
  /// StatusCodeName of the failure ("InvalidArgument", "NotFound", ...).
  std::string code;
  /// Human-readable detail.
  std::string message;
};

/// Any server-to-client message.
using Response =
    std::variant<SessionStarted, LabelsEnqueued, LabelArrived, EstimateReply,
                 CheckpointAck, SessionClosed, ErrorReply>;

/// Serialises a request to its wire form: line-framed `key = value` text,
/// one `oasis_service_protocol` version line, a `type` line, then the
/// message's fields in a fixed order (numbers via %.17g, so round trips are
/// value-exact; the exact bytes are golden-locked in
/// tests/service_protocol_test.cc). Socket-ready: pure bytes, no in-process
/// pointers.
std::string SerializeRequest(const Request& request);

/// Serialises a response (same wire form as SerializeRequest).
std::string SerializeResponse(const Response& response);

/// Parses a request, strictly: the version line must match
/// kProtocolVersion, the type must be known, every field must parse, and
/// unknown keys are an error (ConfigMap::CheckAllKeysUsed — wire-format
/// drift surfaces loudly, like the summary JSON schema).
Result<Request> ParseRequest(const std::string& text);

/// Parses a response (same strictness as ParseRequest).
Result<Response> ParseResponse(const std::string& text);

/// Builds the ErrorReply for `status` (code name + message).
ErrorReply MakeErrorReply(const Status& status);

/// Reconstructs the Status an ErrorReply was built from (unknown code names
/// map to kInternal). MakeErrorReply round-trips through this.
Status ErrorReplyToStatus(const ErrorReply& error);

}  // namespace service
}  // namespace oasis

#endif  // OASIS_SERVICE_PROTOCOL_H_
