#include "service/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "experiments/config.h"
#include "experiments/runner.h"

namespace oasis {
namespace service {
namespace {

using experiments::ConfigMap;

// ---------------------------------------------------------------------------
// Wire-form helpers. One `key = value` line per field; numbers through the
// same %.17g / strtod round trip as the summary JSON, strings through a
// minimal percent-encoding so any byte sequence survives the line framing
// and ConfigMap's comment/trim rules.
// ---------------------------------------------------------------------------

bool IsWire(char c) { return c == ' ' || c == '\t'; }

/// Percent-encodes `text` for a config value: '%', '#' (comment starter),
/// CR/LF (line framing) always; leading/trailing whitespace (which ConfigMap
/// would trim away) positionally.
std::string PercentEncode(const std::string& text) {
  size_t head = 0;
  while (head < text.size() && IsWire(text[head])) ++head;
  size_t tail = text.size();
  while (tail > head && IsWire(text[tail - 1])) --tail;
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const bool positional = (i < head || i >= tail) && IsWire(c);
    if (c == '%' || c == '#' || c == '\n' || c == '\r' || positional) {
      char buffer[4];
      std::snprintf(buffer, sizeof(buffer), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Result<std::string> PercentDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument(
          "service protocol: truncated percent-escape in '" + text + "'");
    }
    const int hi = HexDigit(text[i + 1]);
    const int lo = HexDigit(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument(
          "service protocol: malformed percent-escape in '" + text + "'");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

void AppendInt(const std::string& key, int64_t value, std::string* out) {
  *out += key + " = " + std::to_string(value) + "\n";
}

void AppendDouble(const std::string& key, double value, std::string* out) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += key + " = " + buffer + "\n";
}

void AppendBool(const std::string& key, bool value, std::string* out) {
  *out += key + " = " + (value ? std::string("true") : std::string("false")) +
          "\n";
}

void AppendText(const std::string& key, const std::string& value,
                std::string* out) {
  *out += key + " = " + PercentEncode(value) + "\n";
}

void AppendInt64List(const std::string& key, const std::vector<int64_t>& values,
                     std::string* out) {
  if (values.empty()) return;  // Absent key parses back to an empty list.
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ",";
    joined += std::to_string(values[i]);
  }
  *out += key + " = " + joined + "\n";
}

void AppendDoubleList(const std::string& key, const std::vector<double>& values,
                      std::string* out) {
  if (values.empty()) return;
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ",";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    joined += buffer;
  }
  *out += key + " = " + joined + "\n";
}

void AppendBitList(const std::string& key, const std::vector<uint8_t>& values,
                   std::string* out) {
  if (values.empty()) return;
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ",";
    joined += values[i] ? "1" : "0";
  }
  *out += key + " = " + joined + "\n";
}

void AppendHeader(const char* type, std::string* out) {
  AppendInt("oasis_service_protocol", kProtocolVersion, out);
  *out += std::string("type = ") + type + "\n";
}

Result<std::string> GetText(const ConfigMap& config, const std::string& key,
                            const std::string& fallback) {
  return PercentDecode(config.GetStringOr(key, fallback));
}

Result<std::vector<int64_t>> GetInt64List(const ConfigMap& config,
                                          const std::string& key) {
  std::vector<int64_t> out;
  for (const std::string& item : config.GetStringList(key)) {
    char* end = nullptr;
    const long long value = std::strtoll(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("service protocol: bad integer '" + item +
                                     "' in list '" + key + "'");
    }
    out.push_back(static_cast<int64_t>(value));
  }
  return out;
}

Result<std::vector<double>> GetDoubleList(const ConfigMap& config,
                                          const std::string& key) {
  std::vector<double> out;
  for (const std::string& item : config.GetStringList(key)) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("service protocol: bad number '" + item +
                                     "' in list '" + key + "'");
    }
    out.push_back(value);
  }
  return out;
}

Result<std::vector<uint8_t>> GetBitList(const ConfigMap& config,
                                        const std::string& key) {
  std::vector<uint8_t> out;
  for (const std::string& item : config.GetStringList(key)) {
    if (item != "0" && item != "1") {
      return Status::InvalidArgument("service protocol: bad flag '" + item +
                                     "' in list '" + key + "' (want 0 or 1)");
    }
    out.push_back(item == "1" ? 1 : 0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared EstimateReport body (LabelArrived / EstimateReply / SessionClosed).
// ---------------------------------------------------------------------------

void AppendReport(const EstimateReport& report, std::string* out) {
  AppendInt("session", report.session, out);
  AppendInt("labels_consumed", report.labels_consumed, out);
  AppendInt("iterations", report.iterations, out);
  AppendDouble("f_alpha", report.f_alpha, out);
  AppendBool("f_defined", report.f_defined, out);
  AppendDouble("precision", report.precision, out);
  AppendBool("precision_defined", report.precision_defined, out);
  AppendDouble("recall", report.recall, out);
  AppendBool("recall_defined", report.recall_defined, out);
  AppendBool("done", report.done, out);
  AppendBool("truncated", report.truncated, out);
}

Result<EstimateReport> ParseReport(const ConfigMap& config) {
  EstimateReport report;
  OASIS_ASSIGN_OR_RETURN(report.session, config.GetInt64Or("session", 0));
  OASIS_ASSIGN_OR_RETURN(report.labels_consumed,
                         config.GetInt64Or("labels_consumed", 0));
  OASIS_ASSIGN_OR_RETURN(report.iterations, config.GetInt64Or("iterations", 0));
  OASIS_ASSIGN_OR_RETURN(report.f_alpha, config.GetDoubleOr("f_alpha", 0.0));
  OASIS_ASSIGN_OR_RETURN(report.f_defined,
                         config.GetBoolOr("f_defined", false));
  OASIS_ASSIGN_OR_RETURN(report.precision,
                         config.GetDoubleOr("precision", 0.0));
  OASIS_ASSIGN_OR_RETURN(report.precision_defined,
                         config.GetBoolOr("precision_defined", false));
  OASIS_ASSIGN_OR_RETURN(report.recall, config.GetDoubleOr("recall", 0.0));
  OASIS_ASSIGN_OR_RETURN(report.recall_defined,
                         config.GetBoolOr("recall_defined", false));
  OASIS_ASSIGN_OR_RETURN(report.done, config.GetBoolOr("done", false));
  OASIS_ASSIGN_OR_RETURN(report.truncated,
                         config.GetBoolOr("truncated", false));
  return report;
}

}  // namespace

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

std::string SerializeRequest(const Request& request) {
  std::string out;
  if (const auto* start = std::get_if<StartSession>(&request)) {
    AppendHeader("start_session", &out);
    const SessionSpec& spec = start->spec;
    AppendText("scenario", spec.scenario, &out);
    AppendText("method", spec.method, &out);
    AppendInt("budget", spec.budget, &out);
    AppendInt("checkpoint_every", spec.checkpoint_every, &out);
    AppendInt("strata", spec.strata, &out);
    AppendInt("seed", static_cast<int64_t>(spec.seed), &out);
    AppendInt("stream", static_cast<int64_t>(spec.stream), &out);
    experiments::AppendStackSpecConfig(spec.stack, "stack_", &out);
  } else if (const auto* labels = std::get_if<RequestLabels>(&request)) {
    AppendHeader("request_labels", &out);
    AppendInt("session", labels->session, &out);
    AppendInt("labels", labels->labels, &out);
    AppendBool("wait", labels->wait, &out);
  } else if (const auto* estimate = std::get_if<GetEstimate>(&request)) {
    AppendHeader("get_estimate", &out);
    AppendInt("session", estimate->session, &out);
  } else if (const auto* checkpoint = std::get_if<Checkpoint>(&request)) {
    AppendHeader("checkpoint", &out);
    AppendInt("session", checkpoint->session, &out);
  } else if (const auto* close = std::get_if<CloseSession>(&request)) {
    AppendHeader("close_session", &out);
    AppendInt("session", close->session, &out);
  }
  return out;
}

Result<Request> ParseRequest(const std::string& text) {
  OASIS_ASSIGN_OR_RETURN(const ConfigMap config, ConfigMap::Parse(text));
  OASIS_ASSIGN_OR_RETURN(const int64_t version,
                         config.GetInt64("oasis_service_protocol"));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "service protocol: version " + std::to_string(version) +
        " not supported (this build speaks " +
        std::to_string(kProtocolVersion) + ")");
  }
  OASIS_ASSIGN_OR_RETURN(const std::string type, config.GetString("type"));
  Request request;
  if (type == "start_session") {
    StartSession message;
    SessionSpec& spec = message.spec;
    OASIS_ASSIGN_OR_RETURN(spec.scenario, GetText(config, "scenario", ""));
    OASIS_ASSIGN_OR_RETURN(spec.method, GetText(config, "method", spec.method));
    OASIS_ASSIGN_OR_RETURN(spec.budget,
                           config.GetInt64Or("budget", spec.budget));
    OASIS_ASSIGN_OR_RETURN(
        spec.checkpoint_every,
        config.GetInt64Or("checkpoint_every", spec.checkpoint_every));
    OASIS_ASSIGN_OR_RETURN(spec.strata,
                           config.GetInt64Or("strata", spec.strata));
    OASIS_ASSIGN_OR_RETURN(
        const int64_t seed,
        config.GetInt64Or("seed", static_cast<int64_t>(spec.seed)));
    spec.seed = static_cast<uint64_t>(seed);
    OASIS_ASSIGN_OR_RETURN(
        const int64_t stream,
        config.GetInt64Or("stream", static_cast<int64_t>(spec.stream)));
    spec.stream = static_cast<uint64_t>(stream);
    OASIS_ASSIGN_OR_RETURN(spec.stack,
                           experiments::StackSpecFromConfig(config, "stack_"));
    request = message;
  } else if (type == "request_labels") {
    RequestLabels message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    OASIS_ASSIGN_OR_RETURN(message.labels, config.GetInt64Or("labels", 0));
    OASIS_ASSIGN_OR_RETURN(message.wait, config.GetBoolOr("wait", true));
    request = message;
  } else if (type == "get_estimate") {
    GetEstimate message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    request = message;
  } else if (type == "checkpoint") {
    Checkpoint message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    request = message;
  } else if (type == "close_session") {
    CloseSession message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    request = message;
  } else {
    return Status::InvalidArgument("service protocol: unknown request type '" +
                                   type + "'");
  }
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  return request;
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

std::string SerializeResponse(const Response& response) {
  std::string out;
  if (const auto* started = std::get_if<SessionStarted>(&response)) {
    AppendHeader("session_started", &out);
    AppendInt("session", started->session, &out);
  } else if (const auto* enqueued = std::get_if<LabelsEnqueued>(&response)) {
    AppendHeader("labels_enqueued", &out);
    AppendInt("session", enqueued->session, &out);
  } else if (const auto* arrived = std::get_if<LabelArrived>(&response)) {
    AppendHeader("label_arrived", &out);
    AppendReport(arrived->report, &out);
    AppendInt("labels_charged", arrived->labels_charged, &out);
  } else if (const auto* estimate = std::get_if<EstimateReply>(&response)) {
    AppendHeader("estimate_reply", &out);
    AppendReport(estimate->report, &out);
  } else if (const auto* ack = std::get_if<CheckpointAck>(&response)) {
    AppendHeader("checkpoint_ack", &out);
    AppendInt("session", ack->session, &out);
    AppendInt("labels_consumed", ack->labels_consumed, &out);
    AppendBool("done", ack->done, &out);
    AppendBool("truncated", ack->truncated, &out);
    AppendInt64List("budgets", ack->budgets, &out);
    AppendDoubleList("f_alpha", ack->f_alpha, &out);
    AppendBitList("f_defined", ack->f_defined, &out);
  } else if (const auto* closed = std::get_if<SessionClosed>(&response)) {
    AppendHeader("session_closed", &out);
    AppendReport(closed->report, &out);
  } else if (const auto* error = std::get_if<ErrorReply>(&response)) {
    AppendHeader("error_reply", &out);
    AppendText("code", error->code, &out);
    AppendText("message", error->message, &out);
  }
  return out;
}

Result<Response> ParseResponse(const std::string& text) {
  OASIS_ASSIGN_OR_RETURN(const ConfigMap config, ConfigMap::Parse(text));
  OASIS_ASSIGN_OR_RETURN(const int64_t version,
                         config.GetInt64("oasis_service_protocol"));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "service protocol: version " + std::to_string(version) +
        " not supported (this build speaks " +
        std::to_string(kProtocolVersion) + ")");
  }
  OASIS_ASSIGN_OR_RETURN(const std::string type, config.GetString("type"));
  Response response;
  if (type == "session_started") {
    SessionStarted message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    response = message;
  } else if (type == "labels_enqueued") {
    LabelsEnqueued message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    response = message;
  } else if (type == "label_arrived") {
    LabelArrived message;
    OASIS_ASSIGN_OR_RETURN(message.report, ParseReport(config));
    OASIS_ASSIGN_OR_RETURN(message.labels_charged,
                           config.GetInt64Or("labels_charged", 0));
    response = message;
  } else if (type == "estimate_reply") {
    EstimateReply message;
    OASIS_ASSIGN_OR_RETURN(message.report, ParseReport(config));
    response = message;
  } else if (type == "checkpoint_ack") {
    CheckpointAck message;
    OASIS_ASSIGN_OR_RETURN(message.session, config.GetInt64Or("session", 0));
    OASIS_ASSIGN_OR_RETURN(message.labels_consumed,
                           config.GetInt64Or("labels_consumed", 0));
    OASIS_ASSIGN_OR_RETURN(message.done, config.GetBoolOr("done", false));
    OASIS_ASSIGN_OR_RETURN(message.truncated,
                           config.GetBoolOr("truncated", false));
    OASIS_ASSIGN_OR_RETURN(message.budgets, GetInt64List(config, "budgets"));
    OASIS_ASSIGN_OR_RETURN(message.f_alpha, GetDoubleList(config, "f_alpha"));
    OASIS_ASSIGN_OR_RETURN(message.f_defined, GetBitList(config, "f_defined"));
    if (message.f_alpha.size() != message.budgets.size() ||
        message.f_defined.size() != message.budgets.size()) {
      return Status::InvalidArgument(
          "service protocol: checkpoint_ack list lengths disagree");
    }
    response = message;
  } else if (type == "session_closed") {
    SessionClosed message;
    OASIS_ASSIGN_OR_RETURN(message.report, ParseReport(config));
    response = message;
  } else if (type == "error_reply") {
    ErrorReply message;
    OASIS_ASSIGN_OR_RETURN(message.code, GetText(config, "code", "Internal"));
    OASIS_ASSIGN_OR_RETURN(message.message, GetText(config, "message", ""));
    response = message;
  } else {
    return Status::InvalidArgument("service protocol: unknown response type '" +
                                   type + "'");
  }
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  return response;
}

ErrorReply MakeErrorReply(const Status& status) {
  ErrorReply error;
  error.code = StatusCodeName(status.code());
  error.message = status.message();
  return error;
}

Status ErrorReplyToStatus(const ErrorReply& error) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,            StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,    StatusCode::kFailedPrecondition,
      StatusCode::kNotFound,      StatusCode::kAlreadyExists,
      StatusCode::kCancelled,     StatusCode::kInternal,
      StatusCode::kUnavailable,   StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : kCodes) {
    if (error.code == StatusCodeName(code)) {
      return Status(code, error.message);
    }
  }
  return Status::Internal(error.message);
}

}  // namespace service
}  // namespace oasis
