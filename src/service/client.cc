#include "service/client.h"

#include <utility>
#include <variant>

namespace oasis {
namespace service {

Result<std::string> InProcessTransport::RoundTrip(
    const std::string& request_bytes) {
  // Malformed bytes are a SERVER-side concern: answer with an error_reply,
  // exactly as a socket server would, instead of failing the channel.
  Result<Request> request = ParseRequest(request_bytes);
  if (!request.ok()) {
    return SerializeResponse(MakeErrorReply(request.status()));
  }
  return SerializeResponse(manager_->Handle(request.ValueOrDie()));
}

Result<Response> ServiceClient::Call(const Request& request) {
  OASIS_ASSIGN_OR_RETURN(const std::string response_bytes,
                         transport_->RoundTrip(SerializeRequest(request)));
  OASIS_ASSIGN_OR_RETURN(Response response, ParseResponse(response_bytes));
  if (const auto* error = std::get_if<ErrorReply>(&response)) {
    return ErrorReplyToStatus(*error);
  }
  return response;
}

template <typename T>
Result<T> ServiceClient::Expect(const Request& request) {
  OASIS_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!std::holds_alternative<T>(response)) {
    return Status::Internal(
        "service client: server sent an unexpected response type");
  }
  return std::get<T>(std::move(response));
}

Result<int64_t> ServiceClient::Start(const SessionSpec& spec) {
  StartSession request;
  request.spec = spec;
  OASIS_ASSIGN_OR_RETURN(const SessionStarted started,
                         Expect<SessionStarted>(request));
  return started.session;
}

Result<LabelArrived> ServiceClient::RequestLabels(int64_t session,
                                                  int64_t labels) {
  struct RequestLabels request;
  request.session = session;
  request.labels = labels;
  request.wait = true;
  return Expect<LabelArrived>(request);
}

Status ServiceClient::EnqueueLabels(int64_t session, int64_t labels) {
  struct RequestLabels request;
  request.session = session;
  request.labels = labels;
  request.wait = false;
  return Expect<LabelsEnqueued>(request).status();
}

Result<EstimateReport> ServiceClient::GetEstimate(int64_t session) {
  struct GetEstimate request;
  request.session = session;
  OASIS_ASSIGN_OR_RETURN(const EstimateReply reply,
                         Expect<EstimateReply>(request));
  return reply.report;
}

Result<CheckpointAck> ServiceClient::GetCheckpoint(int64_t session) {
  Checkpoint request;
  request.session = session;
  return Expect<CheckpointAck>(request);
}

Result<EstimateReport> ServiceClient::Close(int64_t session) {
  CloseSession request;
  request.session = session;
  OASIS_ASSIGN_OR_RETURN(const SessionClosed closed,
                         Expect<SessionClosed>(request));
  return closed.report;
}

}  // namespace service
}  // namespace oasis
