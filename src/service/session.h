#ifndef OASIS_SERVICE_SESSION_H_
#define OASIS_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "experiments/runner.h"
#include "oracle/label_cache.h"
#include "oracle/oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/shared_label_store.h"
#include "sampling/sampler.h"
#include "service/protocol.h"

namespace oasis {
namespace service {

/// One live evaluation session: a sampler with its own RNG stream, its own
/// oracle decorator stack and label cache, advanced incrementally against a
/// shared immutable backend (pool + base oracle). The incremental twin of one
/// RunTrajectory call — state that RunTrajectory keeps in locals across its
/// loop lives here across Advance() calls.
///
/// Determinism contract (tested in tests/session_server_test.cc): a session
/// over scenario backend B with (seed, stream) = (base_seed, r) produces, at
/// every checkpoint, estimates bit-identical to repeat r of
/// experiments::RunErrorCurve on B with base_seed — regardless of how callers
/// slice their label requests, because Advance() replicates RunTrajectory's
/// batch partitioning exactly and only pauses between batches, never inside
/// one (so the oracle attempt sequence, and with it any fault/jitter
/// schedule, is identical to batch mode).
///
/// Not thread-safe: the SessionManager serialises access per session.
class EvalSession {
 public:
  /// Builds a session over the shared backend. `pool` and `oracle` must
  /// outlive the session; `store` (nullable) is the backend's shared label
  /// store, engaged only when spec.stack.share_labels. The session's stack
  /// seeds are forked by spec.stream (OracleStackBuilder::ForkSeeds), its
  /// sampler runs on Rng::Fork(spec.seed, spec.stream) — both exactly the
  /// batch runner's per-repeat arrangement.
  static Result<std::unique_ptr<EvalSession>> Create(
      int64_t id, const SessionSpec& spec,
      const experiments::MethodSpec& method, const ScoredPool* pool,
      const Oracle* oracle, SharedLabelStore* store);

  /// Advances the session by at least `label_quota` charged labels (<= 0:
  /// run to the full budget), stopping early when the budget is exhausted or
  /// the iteration cap fires. The quota is only checked between trajectory
  /// batches — one batch is never split — so the label count may overshoot
  /// by up to checkpoint_every. Returns the labels charged by THIS call.
  /// A failed advance (fallible oracle stack without retries) leaves the
  /// session at its pre-batch state and is sticky via the manager.
  Result<int64_t> Advance(int64_t label_quota);

  /// Current estimate state (protocol form).
  EstimateReport Report() const;

  /// Checkpointed trajectory so far (protocol form): estimates at every
  /// reached checkpoint; once done, the full grid with RunTrajectory's
  /// trailing fill applied.
  CheckpointAck CheckpointData() const;

  /// Whether the session finished (budget exhausted or truncated).
  bool done() const { return done_; }

  /// Session id (assigned by the manager).
  int64_t id() const { return id_; }

  /// The spec the session was started with.
  const SessionSpec& spec() const { return spec_; }

  /// The sampler's weight-degeneracy monitor, when it has one (diagnostics;
  /// nullptr otherwise).
  const DegeneracyMonitor* degeneracy_monitor() const {
    return sampler_->degeneracy_monitor();
  }

 private:
  EvalSession(int64_t id, const SessionSpec& spec, OracleStack stack)
      : id_(id), spec_(spec), stack_(std::move(stack)) {}

  const int64_t id_;
  const SessionSpec spec_;
  /// Order matters: the cache points into the stack, the sampler into the
  /// cache; members destroy in reverse declaration order.
  OracleStack stack_;
  std::unique_ptr<LabelCache> labels_;
  std::unique_ptr<Sampler> sampler_;

  /// Checkpoint grid (checkpoint_every, 2*checkpoint_every, ..., budget).
  std::vector<int64_t> budgets_;
  /// Estimate snapshot at each reached checkpoint (parallel prefix of
  /// budgets_).
  std::vector<EstimateSnapshot> snapshots_;
  size_t next_checkpoint_ = 0;
  /// RunTrajectory's f_defined_seen local, persisted across Advance calls:
  /// single-step until F first defines, checkpoint-sized batches after.
  bool f_defined_seen_ = false;
  int64_t max_iterations_ = 0;
  bool truncated_ = false;
  bool done_ = false;
};

}  // namespace service
}  // namespace oasis

#endif  // OASIS_SERVICE_SESSION_H_
