#ifndef OASIS_SERVICE_SESSION_MANAGER_H_
#define OASIS_SERVICE_SESSION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/scenario.h"
#include "experiments/runner.h"
#include "oracle/shared_label_store.h"
#include "service/protocol.h"
#include "service/session.h"

namespace oasis {
namespace service {

/// Controls of one SessionManager (the server side of docs/SERVICE.md).
struct SessionManagerOptions {
  /// Worker threads for asynchronous label requests; 0 = hardware
  /// concurrency. Per-session results are bit-identical for every value —
  /// sessions never share mutable state, so the pool only changes scheduling.
  int num_threads = 0;
};

/// Hosts many concurrent evaluation sessions in one long-lived process.
///
/// Each session owns its sampler, RNG stream, oracle decorator stack and
/// label cache; sessions over the same scenario share one immutable backend
/// (generated pool + base oracle + stratification cache) and, when they opt
/// in, one SharedLabelStore. Asynchronous label requests multiplex onto one
/// ThreadPool; a per-session mutex serialises each session's advances, so
/// arbitrarily many sessions progress in parallel while any single session
/// stays strictly sequential (the determinism contract of EvalSession).
///
/// All public methods are thread-safe. Errors never tear the server down:
/// Handle() maps every failure to an ErrorReply, and a session whose advance
/// failed (e.g. an oracle outage without retries) parks the error, which
/// every later request against that session returns — siblings are
/// unaffected (tested in tests/session_server_test.cc's chaos leg).
class SessionManager {
 public:
  /// Starts the worker pool; sessions are created on demand by Start().
  explicit SessionManager(const SessionManagerOptions& options = {});
  /// Drains queued advances, then joins the pool.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;             ///< Non-copyable.
  SessionManager& operator=(const SessionManager&) = delete;  ///< Non-copyable.

  /// Serves one protocol request. Never fails as a call: every error becomes
  /// an ErrorReply response.
  Response Handle(const Request& request);

  // Typed equivalents of the protocol (Handle dispatches onto these).

  /// Creates a session; generates the scenario backend on first use.
  Result<SessionStarted> Start(const SessionSpec& spec);
  /// Advances a session by at least `labels` charged labels, synchronously
  /// (waits for any queued advances on the session first).
  Result<LabelArrived> AdvanceSync(int64_t session, int64_t labels);
  /// Queues the advance on the pool and returns immediately.
  Result<LabelsEnqueued> AdvanceAsync(int64_t session, int64_t labels);
  /// Current estimate (settles queued advances first).
  Result<EstimateReply> Estimate(int64_t session);
  /// Checkpoint trajectory so far (settles queued advances first).
  Result<CheckpointAck> Checkpoint(int64_t session);
  /// Settles, reports the final state, and frees the session.
  Result<SessionClosed> Close(int64_t session);

  /// Number of currently open sessions.
  int64_t ActiveSessions() const;

 private:
  /// Shared immutable per-scenario state: the generated pool, its oracle,
  /// a method cache (stratification is the expensive part), and the
  /// cross-session label store. Backends are created on first StartSession
  /// for a scenario and live for the manager's lifetime.
  struct Backend {
    /// The generated known-truth pool (pure function of the scenario spec).
    datagen::ScenarioPool pool;
    /// The scenario's base oracle over `pool`.
    std::unique_ptr<Oracle> oracle;
    /// Created lazily on the first sharing session; RemoteOracle gates
    /// engagement on the oracle being deterministic and RNG-free.
    std::unique_ptr<SharedLabelStore> store;
    /// MethodSpec per "method/strata" key (shared Strata inside).
    std::unordered_map<std::string, experiments::MethodSpec> methods;
  };

  /// One hosted session plus its concurrency state. The entry mutex
  /// serialises advances; `pending` holds queued (wait = false) advances.
  /// Entries are shared_ptr so a queued task survives a concurrent Close.
  struct Entry {
    /// Serialises all advances on this session.
    std::mutex mu;
    /// The hosted session (sampler + stack + forked RNG stream).
    std::unique_ptr<EvalSession> session;
    /// Queued asynchronous advances not yet settled.
    std::vector<ThreadPool::TaskHandle> pending;
    /// First failure from any advance; sticky — later requests return it.
    Status failed;
    /// Whether the completed-sessions counter already saw this session.
    bool completion_counted = false;
  };

  /// Returns the backend for `scenario`, generating it on first use.
  /// Called under mu_.
  Result<Backend*> GetBackendLocked(const std::string& scenario);
  /// Returns the method spec for (method, strata) on `backend`, building and
  /// caching it on first use. Called under mu_.
  Result<const experiments::MethodSpec*> GetMethodLocked(Backend* backend,
                                                         const SessionSpec& spec);
  /// Looks up a session entry by id.
  Result<std::shared_ptr<Entry>> FindEntry(int64_t session) const;
  /// Waits out every queued advance of `entry`. Must NOT be called while
  /// holding entry->mu (TaskHandle::Wait may execute the task inline, and
  /// the task locks entry->mu).
  void Settle(const std::shared_ptr<Entry>& entry);
  /// Runs one advance under the entry lock, folding failures into
  /// entry->failed and keeping the telemetry counters. Returns the
  /// post-advance report (the LabelArrived payload).
  Result<LabelArrived> AdvanceLocked(const std::shared_ptr<Entry>& entry,
                                     int64_t labels);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Backend>> backends_;
  std::unordered_map<int64_t, std::shared_ptr<Entry>> sessions_;
  int64_t next_id_ = 1;
  ThreadPool pool_;
};

}  // namespace service
}  // namespace oasis

#endif  // OASIS_SERVICE_SESSION_MANAGER_H_
