#include "service/session.h"

#include <algorithm>

#include "common/random.h"

namespace oasis {
namespace service {

Result<std::unique_ptr<EvalSession>> EvalSession::Create(
    int64_t id, const SessionSpec& spec, const experiments::MethodSpec& method,
    const ScoredPool* pool, const Oracle* oracle, SharedLabelStore* store) {
  if (spec.budget <= 0) {
    return Status::InvalidArgument("EvalSession: budget must be positive");
  }
  if (spec.checkpoint_every <= 0 || spec.checkpoint_every > spec.budget) {
    return Status::InvalidArgument(
        "EvalSession: checkpoint_every must lie in [1, budget]");
  }
  OASIS_ASSIGN_OR_RETURN(
      OracleStack stack,
      OracleStackBuilder(spec.stack)
          .ShareLabels(spec.stack.share_labels ? store : nullptr)
          .ForkSeeds(spec.stream)
          .Build(oracle));
  std::unique_ptr<EvalSession> session(
      new EvalSession(id, spec, std::move(stack)));
  session->labels_ = std::make_unique<LabelCache>(&session->stack_.top());
  OASIS_ASSIGN_OR_RETURN(
      session->sampler_,
      method.factory(pool, session->labels_.get(),
                     Rng::Fork(spec.seed, spec.stream)));
  for (int64_t b = spec.checkpoint_every; b <= spec.budget;
       b += spec.checkpoint_every) {
    session->budgets_.push_back(b);
  }
  session->snapshots_.reserve(session->budgets_.size());
  // RunTrajectory's derived default cap (TrajectoryOptions.max_iterations=0).
  session->max_iterations_ = 50 * spec.budget + 100000;
  return session;
}

Result<int64_t> EvalSession::Advance(int64_t label_quota) {
  if (done_) return static_cast<int64_t>(0);
  const int64_t start = sampler_->labels_consumed();
  // The loop below is RunTrajectory's, verbatim — single-step until F first
  // defines, then batches sized to the next checkpoint deficit, capped by the
  // remaining iteration allowance — with ONE addition: the quota check
  // between batches. Keeping the batch partitioning identical is what makes
  // the oracle attempt sequence (and thus any fault schedule) independent of
  // how callers slice their label requests.
  while (sampler_->labels_consumed() < spec_.budget) {
    if (label_quota > 0 && sampler_->labels_consumed() - start >= label_quota) {
      return sampler_->labels_consumed() - start;
    }
    if (sampler_->iterations() >= max_iterations_) {
      truncated_ = true;
      break;
    }
    int64_t batch = 1;
    if (f_defined_seen_) {
      const int64_t consumed = sampler_->labels_consumed();
      const int64_t target = next_checkpoint_ < budgets_.size()
                                 ? budgets_[next_checkpoint_]
                                 : spec_.budget;
      batch = std::max<int64_t>(1, target - consumed);
      batch = std::min(batch, max_iterations_ - sampler_->iterations());
    }
    OASIS_RETURN_NOT_OK(sampler_->StepBatch(batch));
    const int64_t consumed = sampler_->labels_consumed();
    const EstimateSnapshot snap = sampler_->Estimate();
    if (!f_defined_seen_ && snap.f_defined) f_defined_seen_ = true;
    while (next_checkpoint_ < budgets_.size() &&
           consumed >= budgets_[next_checkpoint_]) {
      snapshots_.push_back(snap);
      ++next_checkpoint_;
    }
  }
  // Budget exhausted or iteration cap fired: finish with RunTrajectory's
  // trailing fill so every session's trajectory has the full grid shape.
  done_ = true;
  const EstimateSnapshot final_snap = sampler_->Estimate();
  while (next_checkpoint_ < budgets_.size()) {
    snapshots_.push_back(final_snap);
    ++next_checkpoint_;
  }
  return sampler_->labels_consumed() - start;
}

EstimateReport EvalSession::Report() const {
  EstimateReport report;
  report.session = id_;
  report.labels_consumed = sampler_->labels_consumed();
  report.iterations = sampler_->iterations();
  const EstimateSnapshot snap = sampler_->Estimate();
  report.f_alpha = snap.f_alpha;
  report.f_defined = snap.f_defined;
  report.precision = snap.precision;
  report.precision_defined = snap.precision_defined;
  report.recall = snap.recall;
  report.recall_defined = snap.recall_defined;
  report.done = done_;
  report.truncated = truncated_;
  return report;
}

CheckpointAck EvalSession::CheckpointData() const {
  CheckpointAck ack;
  ack.session = id_;
  ack.labels_consumed = sampler_->labels_consumed();
  ack.done = done_;
  ack.truncated = truncated_;
  ack.budgets.assign(budgets_.begin(),
                     budgets_.begin() + static_cast<int64_t>(next_checkpoint_));
  ack.f_alpha.reserve(snapshots_.size());
  ack.f_defined.reserve(snapshots_.size());
  for (const EstimateSnapshot& snap : snapshots_) {
    ack.f_alpha.push_back(snap.f_alpha);
    ack.f_defined.push_back(snap.f_defined ? 1 : 0);
  }
  return ack;
}

}  // namespace service
}  // namespace oasis
