#include "service/session_manager.h"

#include <utility>
#include <variant>

#include "experiments/scenario_run.h"
#include "telemetry/telemetry.h"

namespace oasis {
namespace service {
namespace {

/// Folds a typed handler result into the protocol's Response space.
template <typename T>
Response ToResponse(Result<T> result) {
  if (!result.ok()) return MakeErrorReply(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

SessionManager::SessionManager(const SessionManagerOptions& options)
    : pool_(options.num_threads) {}

SessionManager::~SessionManager() {
  // Drain queued advances so no task outlives the sessions it references;
  // the pool then joins cleanly in its own destructor.
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(sessions_.size());
    for (auto& [id, entry] : sessions_) entries.push_back(entry);
  }
  for (const std::shared_ptr<Entry>& entry : entries) Settle(entry);
}

Response SessionManager::Handle(const Request& request) {
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Counter& requests =
        telemetry::DefaultRegistry().AddCounter(
            "oasis_service_requests_total",
            "Protocol requests served by the session manager.");
    requests.Increment();
  }
  if (const auto* start = std::get_if<StartSession>(&request)) {
    return ToResponse(Start(start->spec));
  }
  if (const auto* labels = std::get_if<RequestLabels>(&request)) {
    if (labels->wait) return ToResponse(AdvanceSync(labels->session, labels->labels));
    return ToResponse(AdvanceAsync(labels->session, labels->labels));
  }
  if (const auto* estimate = std::get_if<GetEstimate>(&request)) {
    return ToResponse(Estimate(estimate->session));
  }
  if (const auto* checkpoint =
          std::get_if<::oasis::service::Checkpoint>(&request)) {
    return ToResponse(this->Checkpoint(checkpoint->session));
  }
  const auto& close = std::get<CloseSession>(request);
  return ToResponse(Close(close.session));
}

Result<SessionManager::Backend*> SessionManager::GetBackendLocked(
    const std::string& scenario) {
  auto it = backends_.find(scenario);
  if (it != backends_.end()) return it->second.get();
  OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioSpec spec,
                         datagen::ScenarioByName(scenario));
  auto backend = std::make_unique<Backend>();
  OASIS_ASSIGN_OR_RETURN(backend->pool, datagen::GenerateScenario(spec));
  OASIS_ASSIGN_OR_RETURN(backend->oracle,
                         datagen::MakeScenarioOracle(backend->pool));
  Backend* raw = backend.get();
  backends_.emplace(scenario, std::move(backend));
  return raw;
}

Result<const experiments::MethodSpec*> SessionManager::GetMethodLocked(
    Backend* backend, const SessionSpec& spec) {
  if (spec.strata <= 0) {
    return Status::InvalidArgument("StartSession: strata must be positive");
  }
  const std::string key = spec.method + "/" + std::to_string(spec.strata);
  auto it = backend->methods.find(key);
  if (it != backend->methods.end()) return &it->second;
  OASIS_ASSIGN_OR_RETURN(
      experiments::MethodSpec method,
      experiments::MakeMethodByName(spec.method, backend->pool.spec.alpha,
                                    backend->pool.scored, spec.strata));
  auto inserted = backend->methods.emplace(key, std::move(method));
  return &inserted.first->second;
}

Result<SessionStarted> SessionManager::Start(const SessionSpec& spec) {
  if (spec.scenario.empty()) {
    return Status::InvalidArgument(
        "StartSession: scenario must name a catalogue entry");
  }
  int64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OASIS_ASSIGN_OR_RETURN(Backend* backend, GetBackendLocked(spec.scenario));
    OASIS_ASSIGN_OR_RETURN(const experiments::MethodSpec* method,
                           GetMethodLocked(backend, spec));
    if (spec.stack.share_labels && backend->store == nullptr) {
      backend->store =
          std::make_unique<SharedLabelStore>(backend->oracle->num_items());
    }
    auto entry = std::make_shared<Entry>();
    id = next_id_;
    OASIS_ASSIGN_OR_RETURN(
        entry->session,
        EvalSession::Create(id, spec, *method, &backend->pool.scored,
                            backend->oracle.get(), backend->store.get()));
    ++next_id_;
    sessions_.emplace(id, std::move(entry));
  }
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Counter& started =
        telemetry::DefaultRegistry().AddCounter(
            "oasis_service_sessions_started_total",
            "Evaluation sessions created by StartSession.");
    started.Increment();
    static telemetry::Gauge& active = telemetry::DefaultRegistry().AddGauge(
        "oasis_service_sessions_active", "Currently open evaluation sessions.");
    active.Add(1.0);
  }
  SessionStarted response;
  response.session = id;
  return response;
}

Result<std::shared_ptr<SessionManager::Entry>> SessionManager::FindEntry(
    int64_t session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id " + std::to_string(session));
  }
  return it->second;
}

void SessionManager::Settle(const std::shared_ptr<Entry>& entry) {
  // Swap the queue out under the lock, wait outside it: Wait() may execute a
  // not-yet-dequeued task inline, and the task itself takes entry->mu.
  std::vector<ThreadPool::TaskHandle> pending;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    pending.swap(entry->pending);
  }
  for (ThreadPool::TaskHandle& handle : pending) handle.Wait();
}

Result<LabelArrived> SessionManager::AdvanceLocked(
    const std::shared_ptr<Entry>& entry, int64_t labels) {
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->failed.ok()) return entry->failed;
  Result<int64_t> charged = entry->session->Advance(labels);
  if (!charged.ok()) {
    // Park the failure: this session is dead, its siblings are not. Every
    // later request against it reports the same root cause.
    entry->failed = charged.status();
    if (OASIS_TELEMETRY_ON) {
      static telemetry::Counter& failed =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_service_sessions_failed_total",
              "Sessions whose advance failed (error parked, siblings "
              "unaffected).");
      failed.Increment();
    }
    return entry->failed;
  }
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Counter& charged_total =
        telemetry::DefaultRegistry().AddCounter(
            "oasis_service_labels_charged_total",
            "Labels charged across all sessions' advances.");
    charged_total.Add(charged.ValueOrDie());
    if (entry->session->done() && !entry->completion_counted) {
      static telemetry::Counter& completed =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_service_sessions_completed_total",
              "Sessions that ran to completion (budget exhausted or "
              "truncated).");
      completed.Increment();
      entry->completion_counted = true;
    }
  }
  LabelArrived response;
  response.report = entry->session->Report();
  response.labels_charged = charged.ValueOrDie();
  return response;
}

Result<LabelArrived> SessionManager::AdvanceSync(int64_t session,
                                                 int64_t labels) {
  OASIS_ASSIGN_OR_RETURN(const std::shared_ptr<Entry> entry,
                         FindEntry(session));
  // Queued advances run first, so sync-after-async observes program order.
  Settle(entry);
  return AdvanceLocked(entry, labels);
}

Result<LabelsEnqueued> SessionManager::AdvanceAsync(int64_t session,
                                                    int64_t labels) {
  OASIS_ASSIGN_OR_RETURN(const std::shared_ptr<Entry> entry,
                         FindEntry(session));
  telemetry::Gauge* depth = nullptr;
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Gauge& queue_depth = telemetry::DefaultRegistry().AddGauge(
        "oasis_service_queue_depth",
        "Asynchronous label requests queued or in flight on the pool.");
    depth = &queue_depth;
    depth->Add(1.0);
  }
  ThreadPool::TaskHandle handle = pool_.Submit([this, entry, labels, depth] {
    (void)AdvanceLocked(entry, labels);
    if (depth != nullptr) depth->Add(-1.0);
  });
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->pending.push_back(std::move(handle));
  }
  LabelsEnqueued response;
  response.session = session;
  return response;
}

Result<EstimateReply> SessionManager::Estimate(int64_t session) {
  OASIS_ASSIGN_OR_RETURN(const std::shared_ptr<Entry> entry,
                         FindEntry(session));
  Settle(entry);
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->failed.ok()) return entry->failed;
  EstimateReply response;
  response.report = entry->session->Report();
  return response;
}

Result<CheckpointAck> SessionManager::Checkpoint(int64_t session) {
  OASIS_ASSIGN_OR_RETURN(const std::shared_ptr<Entry> entry,
                         FindEntry(session));
  Settle(entry);
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->failed.ok()) return entry->failed;
  return entry->session->CheckpointData();
}

Result<SessionClosed> SessionManager::Close(int64_t session) {
  OASIS_ASSIGN_OR_RETURN(const std::shared_ptr<Entry> entry,
                         FindEntry(session));
  Settle(entry);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.erase(session) == 0) {
      // Lost a close-close race: the other call owns the report.
      return Status::NotFound("no session with id " + std::to_string(session));
    }
  }
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Gauge& active = telemetry::DefaultRegistry().AddGauge(
        "oasis_service_sessions_active", "Currently open evaluation sessions.");
    active.Add(-1.0);
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->failed.ok()) return entry->failed;
  SessionClosed response;
  response.report = entry->session->Report();
  return response;
}

int64_t SessionManager::ActiveSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

}  // namespace service
}  // namespace oasis
