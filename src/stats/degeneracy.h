#ifndef OASIS_STATS_DEGENERACY_H_
#define OASIS_STATS_DEGENERACY_H_

#include <cstdint>
#include <string>

namespace oasis {

/// Thresholds of a DegeneracyMonitor (see that class). Defaults are
/// deliberately conservative: OASIS's epsilon-greedy floor already bounds
/// weights by 1/epsilon, so a healthy run never trips them.
struct DegeneracyOptions {
  /// Observations required before degenerate() may fire — ESS estimates from
  /// a handful of weights are noise.
  int64_t min_observations = 64;

  /// Degenerate when ESS / n falls below this fraction (kish effective
  /// sample size collapsing to a vanishing share of the sample).
  double ess_floor_fraction = 0.02;

  /// Degenerate when a single observation's weight carries more than this
  /// share of the total weight mass (one-draw-dominates tail collapse, the
  /// classic SIS failure mode).
  double tail_mass_ceiling = 0.9;
};

/// Streaming importance-weight health monitor: tracks the Kish effective
/// sample size ESS = (sum w)^2 / sum w^2 and the largest single weight's
/// share of the total mass, the two standard early warnings of importance-
/// sampling degeneracy (weights concentrating on a vanishing subset of
/// draws; see docs/FAULT_MODEL.md for the estimator-consistency discussion).
///
/// Samplers feed every accepted observation's weight through Observe() and
/// may react to degenerate() (OASIS boosts its epsilon-greedy floor and can
/// freeze its instrumental distribution — OasisOptions::degrade_on_degeneracy).
/// Harnesses read ess() per checkpoint for trajectories and CSV output.
/// Plain value type, one per sampler; not thread-safe (samplers are
/// single-threaded by contract).
class DegeneracyMonitor {
 public:
  /// Monitor with default thresholds.
  DegeneracyMonitor() = default;

  /// Monitor with explicit thresholds.
  explicit DegeneracyMonitor(const DegeneracyOptions& options)
      : options_(options) {}

  /// Folds one observation's importance weight (>= 0) into the running
  /// moments.
  void Observe(double weight) {
    ++observations_;
    sum_w_ += weight;
    sum_w2_ += weight * weight;
    if (weight > max_w_) max_w_ = weight;
  }

  /// Observations folded in so far.
  int64_t observations() const { return observations_; }

  /// Kish effective sample size (sum w)^2 / sum w^2; equals observations()
  /// for uniform weights, collapses towards 1 as the weights degenerate.
  /// 0 before any observation (or when every weight was 0).
  double ess() const {
    return sum_w2_ > 0.0 ? (sum_w_ * sum_w_) / sum_w2_ : 0.0;
  }

  /// ESS as a fraction of observations (1 = perfectly uniform weights).
  double ess_fraction() const {
    return observations_ > 0 ? ess() / static_cast<double>(observations_) : 0.0;
  }

  /// Largest single weight's share of the total weight mass.
  double max_weight_share() const {
    return sum_w_ > 0.0 ? max_w_ / sum_w_ : 0.0;
  }

  /// Whether the weight history looks degenerate: enough observations AND
  /// (ESS collapsed below the floor OR one weight dominates the mass).
  bool degenerate() const {
    if (observations_ < options_.min_observations) return false;
    return ess_fraction() < options_.ess_floor_fraction ||
           max_weight_share() > options_.tail_mass_ceiling;
  }

  /// The thresholds in force.
  const DegeneracyOptions& options() const { return options_; }

  /// One-line human-readable snapshot ("ess=12.3/400 (3.1%) max_share=0.42
  /// degenerate") for logs and failure messages.
  std::string Summary() const;

  /// Forgets all observations (thresholds are kept).
  void Reset() {
    observations_ = 0;
    sum_w_ = 0.0;
    sum_w2_ = 0.0;
    max_w_ = 0.0;
  }

 private:
  DegeneracyOptions options_;
  int64_t observations_ = 0;
  double sum_w_ = 0.0;
  double sum_w2_ = 0.0;
  double max_w_ = 0.0;
};

}  // namespace oasis

#endif  // OASIS_STATS_DEGENERACY_H_
