#ifndef OASIS_STATS_HISTOGRAM_H_
#define OASIS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace oasis {

/// Equal-width histogram over a span of real values.
///
/// This is the score-distribution estimate used by the CSF stratification
/// (Algorithm 1, line 2 of the paper): `counts[i]` is the number of values in
/// bin i, and `edges` holds the M+1 bin boundaries. Values equal to the upper
/// edge fall in the last bin (numpy.histogram convention, matching the
/// reference implementation).
struct Histogram {
  std::vector<int64_t> counts;  // size M
  std::vector<double> edges;    // size M + 1, strictly increasing

  /// Number of bins.
  size_t num_bins() const { return counts.size(); }

  /// Lower/upper range covered by the histogram.
  double min() const { return edges.front(); }
  double max() const { return edges.back(); }

  /// Returns the bin index that `value` falls in; values outside the range
  /// are clamped to the first/last bin.
  size_t BinIndex(double value) const;
};

/// Builds an equal-width histogram with `num_bins` bins over [min(values),
/// max(values)]. When all values are identical the single point is widened by
/// a tiny symmetric margin so every bin is well defined.
///
/// Fails with InvalidArgument when `values` is empty, contains NaN, or
/// num_bins == 0.
Result<Histogram> BuildHistogram(std::span<const double> values, size_t num_bins);

}  // namespace oasis

#endif  // OASIS_STATS_HISTOGRAM_H_
