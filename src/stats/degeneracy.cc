#include "stats/degeneracy.h"

#include <cstdio>

namespace oasis {

std::string DegeneracyMonitor::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "ess=%.1f/%lld (%.1f%%) max_share=%.2f%s", ess(),
                static_cast<long long>(observations_), 100.0 * ess_fraction(),
                max_weight_share(), degenerate() ? " degenerate" : "");
  return std::string(buf);
}

}  // namespace oasis
