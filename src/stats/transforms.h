#ifndef OASIS_STATS_TRANSFORMS_H_
#define OASIS_STATS_TRANSFORMS_H_

#include <span>
#include <vector>

namespace oasis {

/// Logistic function 1 / (1 + exp(-x)); maps R to (0, 1).
///
/// Algorithm 2 of the paper applies this to stratum mean scores (offset by
/// the classifier threshold tau) when raw scores are not probabilities.
double Expit(double x);

/// Inverse of Expit; p is clamped to [eps, 1-eps] for numerical safety.
double Logit(double p, double eps = 1e-12);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Normalises a non-negative weight vector in place to sum to one. When the
/// sum is zero the vector becomes uniform. Returns the pre-normalisation sum.
double NormalizeInPlace(std::span<double> weights);
double NormalizeInPlace(std::vector<double>& weights);

/// Element-wise |a - b| averaged over the vectors (L1 distance / n); the
/// convergence diagnostics of Figure 4 report this for pi-hat and v-star.
/// Vectors must be the same length.
double MeanAbsoluteDifference(std::span<const double> a, std::span<const double> b);

}  // namespace oasis

#endif  // OASIS_STATS_TRANSFORMS_H_
