#ifndef OASIS_STATS_KL_DIVERGENCE_H_
#define OASIS_STATS_KL_DIVERGENCE_H_

#include <span>

#include "common/status.h"

namespace oasis {

/// KL divergence D(p || q) = sum_i p_i log(p_i / q_i) between two discrete
/// distributions given as (possibly unnormalised) non-negative weights.
///
/// Figure 4(d) of the paper reports D(v* || v(t)) as the convergence
/// diagnostic for the instrumental distribution; zero indicates convergence.
///
/// Terms with p_i == 0 contribute zero. Returns InvalidArgument when the
/// vectors differ in length or either fails to normalise; returns +infinity
/// when some p_i > 0 has q_i == 0 (absolute continuity violated).
Result<double> KlDivergence(std::span<const double> p, std::span<const double> q);

}  // namespace oasis

#endif  // OASIS_STATS_KL_DIVERGENCE_H_
