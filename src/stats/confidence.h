#ifndef OASIS_STATS_CONFIDENCE_H_
#define OASIS_STATS_CONFIDENCE_H_

#include "stats/running_stats.h"

namespace oasis {

/// Symmetric normal-approximation confidence interval for a mean.
struct ConfidenceInterval {
  double center = 0.0;
  double half_width = 0.0;

  double lower() const { return center - half_width; }
  double upper() const { return center + half_width; }
};

/// Two-sided standard-normal quantile z such that P(|Z| <= z) = level.
/// Implemented with the Acklam inverse-CDF approximation (|error| < 1.2e-9),
/// so level = 0.95 gives the familiar 1.959964.
double NormalQuantileTwoSided(double level);

/// Normal-approximation CI for the mean of the accumulated samples; this is
/// the "approx. 95% confidence interval" error bar of Figure 5.
ConfidenceInterval MeanConfidenceInterval(const RunningStats& stats,
                                          double level = 0.95);

}  // namespace oasis

#endif  // OASIS_STATS_CONFIDENCE_H_
