#ifndef OASIS_STATS_RUNNING_STATS_H_
#define OASIS_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace oasis {

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// Used throughout the experiment harness to aggregate estimator error and
/// spread across repeated runs without storing every sample.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford / Chan).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divide by n). Zero when fewer than one sample.
  double variance_population() const;

  /// Sample variance (divide by n-1). Zero when fewer than two samples.
  double variance_sample() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean: stddev / sqrt(n).
  double standard_error() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace oasis

#endif  // OASIS_STATS_RUNNING_STATS_H_
