#include "stats/kl_divergence.h"

#include <cmath>
#include <limits>

namespace oasis {

Result<double> KlDivergence(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("KlDivergence: length mismatch");
  }
  if (p.empty()) {
    return Status::InvalidArgument("KlDivergence: empty distributions");
  }
  double p_total = 0.0;
  double q_total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0 || std::isnan(p[i]) || std::isnan(q[i])) {
      return Status::InvalidArgument("KlDivergence: negative or NaN weight");
    }
    p_total += p[i];
    q_total += q[i];
  }
  if (p_total <= 0.0 || q_total <= 0.0) {
    return Status::InvalidArgument("KlDivergence: zero-mass distribution");
  }
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / p_total;
    if (pi == 0.0) continue;
    const double qi = q[i] / q_total;
    if (qi == 0.0) return std::numeric_limits<double>::infinity();
    kl += pi * std::log(pi / qi);
  }
  // Numerical round-off can produce a tiny negative value for p == q.
  return kl < 0.0 ? 0.0 : kl;
}

}  // namespace oasis
