#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace oasis {

size_t Histogram::BinIndex(double value) const {
  const size_t m = num_bins();
  if (value <= edges.front()) return 0;
  if (value >= edges.back()) return m - 1;
  const double width = (edges.back() - edges.front()) / static_cast<double>(m);
  auto idx = static_cast<size_t>((value - edges.front()) / width);
  if (idx >= m) idx = m - 1;
  // Equal-width arithmetic can land one bin off at boundaries; nudge so the
  // bin invariant edges[idx] <= value < edges[idx+1] holds (last bin closed).
  while (idx > 0 && value < edges[idx]) --idx;
  while (idx + 1 < m && value >= edges[idx + 1]) ++idx;
  return idx;
}

Result<Histogram> BuildHistogram(std::span<const double> values, size_t num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("BuildHistogram: empty value span");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("BuildHistogram: num_bins must be positive");
  }
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("BuildHistogram: NaN value");
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) {
    // Degenerate range: widen symmetrically so bins have positive width.
    const double pad = (lo == 0.0) ? 0.5 : std::abs(lo) * 0.5 + 0.5;
    lo -= pad;
    hi += pad;
  }

  Histogram h;
  h.counts.assign(num_bins, 0);
  h.edges.resize(num_bins + 1);
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t i = 0; i <= num_bins; ++i) {
    h.edges[i] = lo + width * static_cast<double>(i);
  }
  h.edges[num_bins] = hi;  // Exact upper edge despite rounding.

  for (double v : values) {
    ++h.counts[h.BinIndex(v)];
  }
  return h;
}

}  // namespace oasis
