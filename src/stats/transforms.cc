#include "stats/transforms.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oasis {

double Expit(double x) {
  // Split by sign to avoid overflow in exp for large |x|.
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Logit(double p, double eps) {
  p = Clamp(p, eps, 1.0 - eps);
  return std::log(p / (1.0 - p));
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double NormalizeInPlace(std::span<double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    const double uniform = weights.empty() ? 0.0 : 1.0 / static_cast<double>(weights.size());
    std::fill(weights.begin(), weights.end(), uniform);
    return total;
  }
  for (double& w : weights) w /= total;
  return total;
}

double NormalizeInPlace(std::vector<double>& weights) {
  return NormalizeInPlace(std::span<double>(weights));
}

double MeanAbsoluteDifference(std::span<const double> a, std::span<const double> b) {
  OASIS_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace oasis
