#include "core/instrumental.h"

#include <algorithm>
#include <cmath>

#include "stats/transforms.h"

namespace oasis {

Status OptimalStratifiedInstrumentalInto(std::span<const double> weights,
                                         std::span<const double> lambda,
                                         std::span<const double> pi,
                                         double f_measure, double alpha,
                                         std::span<double> out) {
  const size_t k = weights.size();
  if (k == 0) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: no strata");
  }
  if (lambda.size() != k || pi.size() != k || out.size() != k) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: length mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: alpha in [0,1]");
  }
  if (std::isnan(f_measure)) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: NaN F");
  }
  const double f = Clamp(f_measure, 0.0, 1.0);

  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (std::isnan(pi[i]) || pi[i] < 0.0 || pi[i] > 1.0) {
      return Status::InvalidArgument(
          "OptimalStratifiedInstrumental: pi outside [0, 1]");
    }
    const double not_pred =
        (1.0 - alpha) * (1.0 - lambda[i]) * f * std::sqrt(pi[i]);
    const double pred =
        lambda[i] * std::sqrt(alpha * alpha * f * f * (1.0 - pi[i]) +
                              (1.0 - f) * (1.0 - f) * pi[i]);
    out[i] = weights[i] * (not_pred + pred);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate estimates: fall back to the underlying stratum weights so
    // downstream sampling remains well defined.
    std::copy(weights.begin(), weights.end(), out.begin());
    NormalizeInPlace(out);
    return Status::OK();
  }
  for (size_t i = 0; i < k; ++i) out[i] /= total;
  return Status::OK();
}

Result<std::vector<double>> OptimalStratifiedInstrumental(
    std::span<const double> weights, std::span<const double> lambda,
    std::span<const double> pi, double f_measure, double alpha) {
  std::vector<double> v(weights.size());
  OASIS_RETURN_NOT_OK(OptimalStratifiedInstrumentalInto(
      weights, lambda, pi, f_measure, alpha, std::span<double>(v)));
  return v;
}

Status EpsilonGreedyMixInto(std::span<const double> weights,
                            std::span<const double> v_star, double epsilon,
                            std::span<double> out) {
  if (weights.size() != v_star.size() || weights.empty() ||
      out.size() != weights.size()) {
    return Status::InvalidArgument("EpsilonGreedyMix: length mismatch or empty");
  }
  if (std::isnan(epsilon) || epsilon <= 0.0 || epsilon > 1.0) {
    return Status::InvalidArgument("EpsilonGreedyMix: epsilon must be in (0, 1]");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    out[i] = epsilon * weights[i] + (1.0 - epsilon) * v_star[i];
  }
  return Status::OK();
}

Result<std::vector<double>> EpsilonGreedyMix(std::span<const double> weights,
                                             std::span<const double> v_star,
                                             double epsilon) {
  std::vector<double> v(weights.size());
  OASIS_RETURN_NOT_OK(
      EpsilonGreedyMixInto(weights, v_star, epsilon, std::span<double>(v)));
  return v;
}

}  // namespace oasis
