#include "core/instrumental.h"

#include <cmath>

#include "stats/transforms.h"

namespace oasis {

Result<std::vector<double>> OptimalStratifiedInstrumental(
    std::span<const double> weights, std::span<const double> lambda,
    std::span<const double> pi, double f_measure, double alpha) {
  const size_t k = weights.size();
  if (k == 0) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: no strata");
  }
  if (lambda.size() != k || pi.size() != k) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: length mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: alpha in [0,1]");
  }
  if (std::isnan(f_measure)) {
    return Status::InvalidArgument("OptimalStratifiedInstrumental: NaN F");
  }
  const double f = Clamp(f_measure, 0.0, 1.0);

  std::vector<double> v(k);
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (std::isnan(pi[i]) || pi[i] < 0.0 || pi[i] > 1.0) {
      return Status::InvalidArgument(
          "OptimalStratifiedInstrumental: pi outside [0, 1]");
    }
    const double not_pred =
        (1.0 - alpha) * (1.0 - lambda[i]) * f * std::sqrt(pi[i]);
    const double pred =
        lambda[i] * std::sqrt(alpha * alpha * f * f * (1.0 - pi[i]) +
                              (1.0 - f) * (1.0 - f) * pi[i]);
    v[i] = weights[i] * (not_pred + pred);
    total += v[i];
  }
  if (total <= 0.0) {
    // Degenerate estimates: fall back to the underlying stratum weights so
    // downstream sampling remains well defined.
    v.assign(weights.begin(), weights.end());
    NormalizeInPlace(v);
    return v;
  }
  for (double& vi : v) vi /= total;
  return v;
}

Result<std::vector<double>> EpsilonGreedyMix(std::span<const double> weights,
                                             std::span<const double> v_star,
                                             double epsilon) {
  if (weights.size() != v_star.size() || weights.empty()) {
    return Status::InvalidArgument("EpsilonGreedyMix: length mismatch or empty");
  }
  if (std::isnan(epsilon) || epsilon <= 0.0 || epsilon > 1.0) {
    return Status::InvalidArgument("EpsilonGreedyMix: epsilon must be in (0, 1]");
  }
  std::vector<double> v(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    v[i] = epsilon * weights[i] + (1.0 - epsilon) * v_star[i];
  }
  return v;
}

}  // namespace oasis
