#include "core/ais_estimator.h"

#include "common/logging.h"

namespace oasis {

AisEstimator::AisEstimator(double alpha) : alpha_(alpha) {
  OASIS_CHECK(alpha >= 0.0 && alpha <= 1.0);
}

void AisEstimator::Add(double weight, bool label, bool prediction) {
  OASIS_DCHECK(weight >= 0.0);
  if (label && prediction) num_ += weight;
  if (prediction) den_pred_ += weight;
  if (label) den_true_ += weight;
  ++observations_;
}

EstimateSnapshot AisEstimator::Snapshot() const {
  EstimateSnapshot snap;
  const double denom = alpha_ * den_pred_ + (1.0 - alpha_) * den_true_;
  if (denom > 0.0) {
    snap.f_alpha = num_ / denom;
    snap.f_defined = true;
  }
  if (den_pred_ > 0.0) {
    snap.precision = num_ / den_pred_;
    snap.precision_defined = true;
  }
  if (den_true_ > 0.0) {
    snap.recall = num_ / den_true_;
    snap.recall_defined = true;
  }
  return snap;
}

double AisEstimator::FAlphaOr(double fallback) const {
  const EstimateSnapshot snap = Snapshot();
  return snap.f_defined ? snap.f_alpha : fallback;
}

}  // namespace oasis
