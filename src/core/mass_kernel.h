#ifndef OASIS_CORE_MASS_KERNEL_H_
#define OASIS_CORE_MASS_KERNEL_H_

#include <cstddef>

namespace oasis {

/// Elementwise unnormalised v* mass kernel of the OASIS instrumental
/// (Eqn. 11):
///
///   v[i] = weights[i] * (c_not_pred[i] * f * sqrt_pi[i]
///          + lambda[i] * sqrt(a2f2 * (1 - pi[i]) + omf2 * pi[i]))
///
/// with `a2f2` = alpha^2 * F^2 and `omf2` = (1 - F)^2 precomputed by the
/// caller with left-to-right association (a2f2 = alpha_sq * f * f), matching
/// OasisSampler::StratumMass exactly.
///
/// The kernel is vectorized (AVX2 when compiled in, else SSE2, else scalar)
/// but every lane performs exactly the scalar sequence of IEEE-754
/// correctly-rounded mul/add/sub/sqrt operations, so the output is
/// bit-identical to the scalar loop at every element for every build flavour
/// — which is what lets the fused step path stay bit-for-bit equal to the
/// allocating reference path (tests/step_path_equivalence via
/// oasis_test/fenwick_step_path_test). No FMA contraction is ever used: a
/// fused multiply-add rounds once where the scalar formula rounds twice.
///
/// Any reduction over v (the total mass) is deliberately left to the caller
/// as a scalar, in-order loop: summation order is part of the bit-identity
/// contract and must not depend on vector width.
///
/// All pointers must address at least `n` doubles; `v` may not alias the
/// inputs.
void StratumMassKernel(const double* weights, const double* lambda,
                       const double* pi, const double* sqrt_pi,
                       const double* c_not_pred, double f, double a2f2,
                       double omf2, double* v, size_t n);

/// True when the kernel above runs on a vector unit (AVX2 or SSE2) rather
/// than the scalar fallback. Diagnostics/benchmark labelling only.
bool MassKernelVectorized();

}  // namespace oasis

#endif  // OASIS_CORE_MASS_KERNEL_H_
