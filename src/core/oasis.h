#ifndef OASIS_CORE_OASIS_H_
#define OASIS_CORE_OASIS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ais_estimator.h"
#include "core/bayesian_model.h"
#include "sampling/sampler.h"
#include "strata/csf.h"
#include "strata/strata.h"

namespace oasis {

/// Which Step() implementation OasisSampler runs. Both produce bit-identical
/// sampling sequences from the same seed; the fused path is simply faster.
enum class OasisStepPath {
  /// Zero-allocation fused scan over precomputed per-stratum constants and an
  /// incrementally-maintained posterior-mean cache. The default.
  kFused,
  /// The original allocating path (PosteriorMeans + OptimalStratified-
  /// Instrumental + EpsilonGreedyMix, one vector each per step). Kept as the
  /// reference implementation for equivalence tests and as the benchmark
  /// baseline the fused path is measured against.
  kAllocatingReference,
};

/// Tunables of Algorithm 3. Defaults follow the paper's experiments
/// (Sec. 6.3: alpha = 1/2, epsilon = 1e-3, eta = 2K).
struct OasisOptions {
  /// F-measure weight: 1 = precision, 0 = recall, 1/2 = balanced F.
  double alpha = 0.5;
  /// Greediness parameter of the epsilon-greedy instrumental mix (Eqn. 12);
  /// must lie in (0, 1] for the consistency guarantee to hold.
  double epsilon = 1e-3;
  /// Prior strength eta > 0; 0 selects the paper's experimental setting
  /// eta = 2K at construction time.
  double prior_strength = 0.0;
  /// Remark-4 retroactive prior decay.
  bool decay_prior = true;
  /// Hot-path selection; see OasisStepPath.
  OasisStepPath step_path = OasisStepPath::kFused;
};

/// OASIS — Optimal Asymptotic Sequential Importance Sampling (Algorithm 3).
///
/// Per iteration: recompute the epsilon-greedy stratified instrumental
/// distribution v(t) from the current Bayesian posterior and F estimate, draw
/// a stratum ~ v(t) and an item uniformly within it, query the oracle, update
/// the beta posterior (Eqn. 10) and fold the importance-weighted observation
/// (w_t = omega_k / v_k) into the AIS estimator (Eqn. 3).
///
/// Estimates of F_alpha, precision and recall are all consistent for their
/// population values (paper Theorem 3); see tests/oasis_test.cc for the
/// statistical verification.
class OasisSampler : public Sampler {
 public:
  /// Creates a sampler over a pre-built stratification. `pool` and `labels`
  /// must outlive the sampler; `strata` is shared so that repeated experiment
  /// runs reuse one stratification. Initial guesses come from Algorithm 2
  /// applied to the pool scores.
  static Result<std::unique_ptr<OasisSampler>> Create(
      const ScoredPool* pool, LabelCache* labels,
      std::shared_ptr<const Strata> strata, const OasisOptions& options, Rng rng);

  /// Convenience: stratifies the pool internally with CSF (Algorithm 1).
  static Result<std::unique_ptr<OasisSampler>> CreateWithCsf(
      const ScoredPool* pool, LabelCache* labels, size_t target_strata,
      const OasisOptions& options, Rng rng);

  Status Step() override;
  Status StepBatch(int64_t n) override;
  EstimateSnapshot Estimate() const override;
  std::string name() const override;

  /// Streams every weighted observation (w_t, l_t, l-hat_t) to a consumer in
  /// addition to the built-in estimator — e.g. a MultiAlphaEstimator pricing
  /// the whole precision-recall trade-off from the same label stream, or a
  /// persistent audit log. Invoked after the internal update, on the calling
  /// thread.
  using Observer = std::function<void(double weight, bool label, bool prediction)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  // --- Diagnostics (Figure 4) -------------------------------------------

  /// Current posterior means pi-hat(t).
  std::vector<double> PosteriorMeans() const { return model_.PosteriorMeans(); }

  /// Current epsilon-greedy instrumental distribution v(t) (normalised).
  Result<std::vector<double>> CurrentInstrumental() const;

  /// Per-stratum mean predictions lambda (fixed by the pool).
  const std::vector<double>& lambda() const { return lambda_; }

  const Strata& strata() const { return *strata_; }
  const OasisOptions& options() const { return options_; }
  double initial_f() const { return initial_f_; }

 private:
  OasisSampler(const ScoredPool* pool, LabelCache* labels,
               std::shared_ptr<const Strata> strata, const OasisOptions& options,
               Rng rng, StratifiedBetaModel model, std::vector<double> lambda,
               double initial_f);

  /// The zero-allocation fused iteration (OasisStepPath::kFused).
  Status StepFused();
  /// The original allocating iteration, kept as reference and benchmark
  /// baseline (OasisStepPath::kAllocatingReference).
  Status StepAllocatingReference();
  /// Records the label in the beta posterior and refreshes the incremental
  /// caches for the observed stratum (the only one whose mean can change).
  void ObserveLabel(size_t stratum, bool label);

  std::shared_ptr<const Strata> strata_;
  OasisOptions options_;
  StratifiedBetaModel model_;
  std::vector<double> lambda_;
  double initial_f_;
  AisEstimator estimator_;
  Observer observer_;
  // Scratch buffer reused across iterations to avoid per-step allocation.
  std::vector<double> v_scratch_;
  // --- Fused-path state --------------------------------------------------
  // Incrementally-maintained posterior means pi-hat_k and their square roots;
  // ObserveLabel refreshes only the observed stratum, so Step() never
  // recomputes the full posterior. Values are bit-identical to
  // model_.PosteriorMeans() at all times.
  std::vector<double> pi_cache_;
  std::vector<double> sqrt_pi_cache_;
  // Precomputed per-stratum constant (1 - alpha) * (1 - lambda_k) of the v*
  // formula; fixed for the sampler's lifetime. The factor grouping mirrors
  // the reference implementation exactly so the fused scan stays bit-for-bit
  // identical to it.
  std::vector<double> c_not_pred_;
  // alpha^2, precomputed once.
  double alpha_sq_ = 0.0;
};

}  // namespace oasis

#endif  // OASIS_CORE_OASIS_H_
