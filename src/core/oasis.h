#ifndef OASIS_CORE_OASIS_H_
#define OASIS_CORE_OASIS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/alias_table.h"
#include "common/block_fenwick_forest.h"
#include "common/fenwick_tree.h"
#include "common/thread_pool.h"
#include "core/ais_estimator.h"
#include "core/bayesian_model.h"
#include "sampling/sampler.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"
#include "strata/strata.h"

namespace oasis {

/// Which Step() implementation OasisSampler runs. kFused and
/// kAllocatingReference produce bit-identical sampling sequences from the
/// same seed (the fused path is simply faster); kFenwick samples from the
/// same instrumental distribution up to a configurable F-staleness tolerance
/// but consumes the RNG differently, so it is equivalent in distribution
/// rather than bit-for-bit (tests/fenwick_step_path_test.cc verifies both
/// the distributional match and estimator consistency).
enum class OasisStepPath {
  /// Zero-allocation fused O(K) scan over precomputed per-stratum constants
  /// and an incrementally-maintained posterior-mean cache. The default.
  kFused,
  /// The original allocating path (PosteriorMeans + OptimalStratified-
  /// Instrumental + EpsilonGreedyMix, one vector each per step). Kept as the
  /// reference implementation for equivalence tests and as the benchmark
  /// baseline the fused path is measured against.
  kAllocatingReference,
  /// Sub-linear draws: an incrementally-maintained Fenwick tree over the
  /// unnormalised v* masses gives O(log K) single-stratum updates and
  /// O(log K) inverse-CDF draws, with the epsilon-greedy mix realised as a
  /// two-component mixture (a static alias table over the stratum weights
  /// for the epsilon branch). Only the observed stratum's mass is refreshed
  /// per step; a full O(K) rebuild happens only when F-hat has drifted more
  /// than OasisOptions::fenwick_rebuild_tol since the masses were last
  /// computed. Because F-hat converges (Theorem 3), rebuilds become rare and
  /// the amortised per-step cost is O(log K) — the path to prefer when K is
  /// large (roughly K >= 1000; see docs/ARCHITECTURE.md).
  kFenwick,
  /// O(1) draws: a Walker/Vose alias table over the unnormalised v* masses,
  /// rebuilt in place (O(K), zero allocation) only when the instrumental has
  /// drifted — either F-hat moved more than fenwick_rebuild_tol since the
  /// table was built, or the accumulated L1 posterior-mass drift across
  /// observed strata exceeds that same fraction of the table's total mass.
  /// Between rebuilds the table is a frozen snapshot, so unlike kFenwick the
  /// observed stratum's own mass also goes stale — the dual drift gate bounds
  /// both sources. Estimates stay consistent at ANY tolerance (importance
  /// weights use the mixture actually sampled, full support via the epsilon
  /// mix); the tolerance only prices staleness of the instrumental
  /// (variance). Distribution-equivalent to kFused/kFenwick, not bit-equal
  /// (tests/alias_step_path_test.cc). Prefer at very large K (roughly
  /// K >= 100k) where even O(log K) per draw shows up; see
  /// docs/BENCHMARKING.md for the Fenwick-vs-alias race.
  kAlias,
  /// kFenwick with the tree sharded into fixed 2^n-sized blocks
  /// (BlockFenwickForest): the O(K) drift rebuilds recompute block masses in
  /// parallel on OasisOptions::shard_pool while draws and single-stratum
  /// updates stay O(log K). The numeric summation layout is a function of
  /// shard_block_size alone — num_shards and the pool's thread count only
  /// schedule work — so results are bit-identical at any shard/thread count
  /// (tests/sharded_pool_test.cc pins this with golden hexfloat curves).
  /// NOT bit-equal to kFenwick (the blocked tree rounds its partial sums
  /// differently), but equivalent in distribution. Prefer at K >= 100k when
  /// a ThreadPool is available to absorb rebuild latency.
  kShardedFenwick,
};

/// Tunables of Algorithm 3. Defaults follow the paper's experiments
/// (Sec. 6.3: alpha = 1/2, epsilon = 1e-3, eta = 2K).
struct OasisOptions {
  /// F-measure weight: 1 = precision, 0 = recall, 1/2 = balanced F.
  double alpha = 0.5;
  /// Greediness parameter of the epsilon-greedy instrumental mix (Eqn. 12);
  /// must lie in (0, 1] for the consistency guarantee to hold.
  double epsilon = 1e-3;
  /// Prior strength eta > 0; 0 selects the paper's experimental setting
  /// eta = 2K at construction time.
  double prior_strength = 0.0;
  /// Remark-4 retroactive prior decay.
  bool decay_prior = true;
  /// Hot-path selection; see OasisStepPath.
  OasisStepPath step_path = OasisStepPath::kFused;
  /// Drift gate of every rebuild-on-drift path (kFenwick, kShardedFenwick,
  /// kAlias): how far |F-hat| may drift from the value the maintained masses
  /// were computed with before a full O(K) rebuild is forced. For kAlias the
  /// same tolerance additionally gates the accumulated L1 posterior-mass
  /// drift (as a fraction of the table's total mass), since the alias
  /// snapshot cannot absorb single-stratum updates. 0 means rebuild whenever
  /// anything changed at all (the exact v(t) at O(K) on almost every early
  /// step); larger values trade a bounded staleness of the instrumental for
  /// cheap steps. Estimates stay consistent for ANY tolerance because
  /// importance weights always use the distribution actually sampled from,
  /// which keeps full support via the epsilon mix — the tolerance only
  /// affects how close the instrumental is to the optimum (variance), never
  /// correctness. Must be finite and >= 0.
  double fenwick_rebuild_tol = 1e-2;
  /// kShardedFenwick only: scheduling shard count for the parallel O(K)
  /// rebuilds. Purely a work-partitioning knob — results are bit-identical
  /// for any value (>= 1). Ignored (serial rebuilds) when shard_pool is
  /// null.
  size_t num_shards = 1;
  /// kShardedFenwick only: pool the drift rebuilds are sharded onto. The
  /// pool must outlive the sampler. Null runs rebuilds serially on the
  /// calling thread (still over the blocked layout, so results match the
  /// pooled run bit-for-bit).
  ThreadPool* shard_pool = nullptr;
  /// kShardedFenwick only: numeric block size of the BlockFenwickForest.
  /// This — and only this — fixes the floating-point summation layout, so
  /// changing it changes results (bitwise); changing num_shards or the
  /// pool's thread count never does. Must be a power of two.
  size_t shard_block_size = 4096;
  /// Thresholds of the always-on importance-weight health monitor (see
  /// DegeneracyMonitor; diagnostics are collected regardless of
  /// degrade_on_degeneracy).
  DegeneracyOptions degeneracy;
  /// When true, a degenerate weight history (ESS collapse or one weight
  /// dominating the mass) flips the sampler into a degraded mode: the
  /// epsilon-greedy floor is boosted to degraded_epsilon and — when
  /// freeze_instrumental_on_degrade — the instrumental distribution is
  /// frozen at its current shape. Estimates remain consistent in either mode
  /// because every importance weight is computed against the distribution
  /// the draw ACTUALLY came from, which keeps full support through the
  /// (boosted) epsilon mix — degrading trades asymptotic variance for
  /// robustness, never correctness (see docs/FAULT_MODEL.md). Off by
  /// default; the default path is bit-identical with the monitor running.
  bool degrade_on_degeneracy = false;
  /// Epsilon floor used once degraded (must lie in (0, 1] when
  /// degrade_on_degeneracy; values below `epsilon` are clamped up to it).
  double degraded_epsilon = 0.5;
  /// Whether degrading also freezes the instrumental distribution (stops
  /// adapting v(t) to the — evidently untrustworthy — posterior; the
  /// posterior itself keeps updating for diagnostics).
  bool freeze_instrumental_on_degrade = true;
};

/// OASIS — Optimal Asymptotic Sequential Importance Sampling (Algorithm 3).
///
/// Per iteration: recompute the epsilon-greedy stratified instrumental
/// distribution v(t) from the current Bayesian posterior and F estimate, draw
/// a stratum ~ v(t) and an item uniformly within it, query the oracle, update
/// the beta posterior (Eqn. 10) and fold the importance-weighted observation
/// (w_t = omega_k / v_k) into the AIS estimator (Eqn. 3).
///
/// Estimates of F_alpha, precision and recall are all consistent for their
/// population values (paper Theorem 3); see tests/oasis_test.cc for the
/// statistical verification.
class OasisSampler : public Sampler {
 public:
  /// Creates a sampler over a pre-built stratification. `pool` and `labels`
  /// must outlive the sampler; `strata` is shared so that repeated experiment
  /// runs reuse one stratification. Initial guesses come from Algorithm 2
  /// applied to the pool scores.
  static Result<std::unique_ptr<OasisSampler>> Create(
      const ScoredPool* pool, LabelCache* labels,
      std::shared_ptr<const Strata> strata, const OasisOptions& options, Rng rng);

  /// Convenience: stratifies the pool internally with CSF (Algorithm 1).
  static Result<std::unique_ptr<OasisSampler>> CreateWithCsf(
      const ScoredPool* pool, LabelCache* labels, size_t target_strata,
      const OasisOptions& options, Rng rng);

  /// One Algorithm-3 iteration through the configured step_path.
  Status Step() override;
  /// `n` iterations with the path dispatch hoisted out of the loop; exactly
  /// equivalent to `n` calls to Step().
  Status StepBatch(int64_t n) override;
  /// Current F_alpha / precision / recall snapshot of the AIS estimator.
  EstimateSnapshot Estimate() const override;
  /// "OASIS-<K>" with K the realised stratum count.
  std::string name() const override;

  /// Streams every weighted observation (w_t, l_t, l-hat_t) to a consumer in
  /// addition to the built-in estimator — e.g. a MultiAlphaEstimator pricing
  /// the whole precision-recall trade-off from the same label stream, or a
  /// persistent audit log. Invoked after the internal update, on the calling
  /// thread.
  using Observer = std::function<void(double weight, bool label, bool prediction)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  // --- Diagnostics (Figure 4) -------------------------------------------

  /// Current posterior means pi-hat(t).
  std::vector<double> PosteriorMeans() const { return model_.PosteriorMeans(); }

  /// Current epsilon-greedy instrumental distribution v(t) (normalised),
  /// recomputed from the live posterior and F estimate — the *ideal* v(t)
  /// every step path tracks.
  Result<std::vector<double>> CurrentInstrumental() const;

  /// kFenwick only: the distribution the next Fenwick draw would actually
  /// use, i.e. epsilon * omega + (1 - epsilon) * (Fenwick mass / total) with
  /// the masses as maintained (possibly computed under an F within
  /// fenwick_rebuild_tol of the live one, and before any rebuild the next
  /// step might trigger). Fails when the sampler does not run the kFenwick
  /// path. Used by the equivalence tests to bound the staleness gap against
  /// CurrentInstrumental().
  Result<std::vector<double>> FenwickInstrumental() const;

  /// kAlias only: the distribution the next alias draw would actually use,
  /// i.e. epsilon * omega + (1 - epsilon) * alias-table probabilities — the
  /// frozen snapshot from the last rebuild, before any rebuild the next step
  /// might trigger. Fails when the sampler does not run the kAlias path.
  /// Used by the equivalence tests to bound the staleness gap against
  /// CurrentInstrumental().
  Result<std::vector<double>> AliasInstrumental() const;

  /// Read access to the stratified beta posterior (diagnostics/tests: e.g.
  /// per-stratum visit counts via labels_observed()).
  const StratifiedBetaModel& model() const { return model_; }

  /// Per-stratum mean predictions lambda (fixed by the pool).
  const std::vector<double>& lambda() const { return lambda_; }

  /// The stratification the sampler draws over.
  const Strata& strata() const { return *strata_; }
  /// Resolved options (prior_strength filled in when the caller left it 0).
  const OasisOptions& options() const { return options_; }
  /// Algorithm-2 initial F-measure guess F-hat(0), used until Eqn. (3) is
  /// defined.
  double initial_f() const { return initial_f_; }

  /// The importance-weight health monitor (always collecting; see
  /// OasisOptions::degeneracy).
  const DegeneracyMonitor* degeneracy_monitor() const override {
    return &monitor_;
  }

  /// Whether the graceful-degradation hook has fired (see
  /// OasisOptions::degrade_on_degeneracy).
  bool degraded() const { return degraded_; }

  /// The epsilon floor currently in force (== options().epsilon until the
  /// sampler degrades).
  double active_epsilon() const { return active_epsilon_; }

 private:
  OasisSampler(const ScoredPool* pool, LabelCache* labels,
               std::shared_ptr<const Strata> strata, const OasisOptions& options,
               Rng rng, StratifiedBetaModel model, std::vector<double> lambda,
               double initial_f);

  /// The zero-allocation fused iteration (OasisStepPath::kFused).
  Status StepFused();
  /// The original allocating iteration, kept as reference and benchmark
  /// baseline (OasisStepPath::kAllocatingReference).
  Status StepAllocatingReference();
  /// The O(log K) Fenwick-tree iteration (OasisStepPath::kFenwick).
  Status StepFenwick();
  /// The O(1) alias-table iteration (OasisStepPath::kAlias).
  Status StepAlias();
  /// The sharded-rebuild Fenwick-forest iteration
  /// (OasisStepPath::kShardedFenwick).
  Status StepShardedFenwick();
  /// The degraded-mode iteration: draw from the frozen instrumental
  /// distribution, weight against it (full support — consistency holds),
  /// keep posterior and diagnostics updating.
  Status StepFrozen();
  /// Fires the graceful degradation once the monitor reports a degenerate
  /// weight history (no-op unless OasisOptions::degrade_on_degeneracy).
  void MaybeDegrade();
  /// Snapshots the current epsilon-greedy instrumental into frozen_v_ (under
  /// the boosted floor) for StepFrozen.
  void CaptureFrozenInstrumental();
  /// One-time kFenwick setup: the weights alias table and the initial mass
  /// build. Called from Create() so construction can still fail cleanly.
  Status InitFenwick();
  /// One-time kAlias setup: the weights alias table, the mass scratch and
  /// the initial v* alias table. Called from Create().
  Status InitAlias();
  /// One-time kShardedFenwick setup: the weights alias table and the initial
  /// blocked mass build. Called from Create().
  Status InitShardedFenwick();
  /// Unnormalised v* mass of stratum k under F estimate `f`, with exactly the
  /// factor grouping of the fused scan.
  double StratumMass(size_t k, double f) const;
  /// Probability of stratum k under the epsilon-greedy mixture the Fenwick
  /// draw actually samples from (`total` = v_star_tree_.Total(), <= 0 selects
  /// the degenerate omega fallback). Single source of truth shared by
  /// StepFenwick's importance weight and FenwickInstrumental.
  double FenwickMixtureProbability(size_t k, double total) const;
  /// Recomputes every Fenwick mass under `f` in O(K) (no allocation) and
  /// records `f` as the build point for the drift check.
  void RebuildFenwickMasses(double f);
  /// Probability of stratum k under the epsilon-greedy mixture the alias
  /// draw actually samples from (alias_degenerate_ selects the omega
  /// fallback). Single source of truth shared by StepAlias's importance
  /// weight and AliasInstrumental.
  double AliasMixtureProbability(size_t k) const;
  /// Recomputes every alias mass under `f` in O(K) (no allocation once
  /// built), refreshes the v* alias table in place and resets the drift
  /// accumulators.
  void RebuildAliasMasses(double f);
  /// Probability of stratum k under the epsilon-greedy mixture the sharded
  /// Fenwick draw actually samples from (`total` = v_star_forest_.Total(),
  /// <= 0 selects the degenerate omega fallback).
  double ShardedMixtureProbability(size_t k, double total) const;
  /// Recomputes every blocked Fenwick mass under `f`, sharding the O(K) work
  /// across options_.shard_pool (serially when null). Bit-identical at any
  /// shard/thread count. Records `f` as the build point.
  void RebuildShardedMasses(double f);
  /// Records the label in the beta posterior and refreshes the incremental
  /// caches for the observed stratum (the only one whose mean can change).
  void ObserveLabel(size_t stratum, bool label);

  std::shared_ptr<const Strata> strata_;
  OasisOptions options_;
  StratifiedBetaModel model_;
  std::vector<double> lambda_;
  double initial_f_;
  AisEstimator estimator_;
  Observer observer_;
  // --- Degeneracy state --------------------------------------------------
  // Always-on weight health monitor; MaybeDegrade consults it per step.
  DegeneracyMonitor monitor_;
  // Epsilon floor in force: options_.epsilon until degradation boosts it.
  // Every step path and CurrentInstrumental read this, never options_.epsilon
  // directly, so the boost applies uniformly.
  double active_epsilon_ = 0.0;
  bool degraded_ = false;
  // When true, Step() routes to StepFrozen() over frozen_v_.
  bool frozen_ = false;
  std::vector<double> frozen_v_;
  // Scratch buffer reused across iterations to avoid per-step allocation.
  std::vector<double> v_scratch_;
  // --- Fused-path state --------------------------------------------------
  // Incrementally-maintained posterior means pi-hat_k and their square roots;
  // ObserveLabel refreshes only the observed stratum, so Step() never
  // recomputes the full posterior. Values are bit-identical to
  // model_.PosteriorMeans() at all times.
  std::vector<double> pi_cache_;
  std::vector<double> sqrt_pi_cache_;
  // Precomputed per-stratum constant (1 - alpha) * (1 - lambda_k) of the v*
  // formula; fixed for the sampler's lifetime. The factor grouping mirrors
  // the reference implementation exactly so the fused scan stays bit-for-bit
  // identical to it.
  std::vector<double> c_not_pred_;
  // alpha^2, precomputed once.
  double alpha_sq_ = 0.0;
  // --- Fenwick-path state ------------------------------------------------
  // Unnormalised v* masses, maintained incrementally: Update for the one
  // observed stratum per step, Rebuild only when F-hat drifts past
  // fenwick_rebuild_tol. Empty unless step_path == kFenwick.
  FenwickTree v_star_tree_;
  // Static O(1) sampler over the stratum weights omega — the epsilon branch
  // of the mixture and the degenerate all-zero-mass fallback.
  AliasTable weights_alias_;
  // F-hat the Fenwick masses were last (re)built with; < 0 until InitFenwick.
  double tree_f_ = -1.0;
  // --- Alias-path state --------------------------------------------------
  // Frozen O(1) sampler over the unnormalised v* masses; rebuilt in place on
  // drift. Empty unless step_path == kAlias.
  AliasTable v_alias_;
  // The masses the table was built from (the snapshot the drift accumulator
  // measures against) and the live masses as they evolve with the posterior.
  // alias_live_mass_ is maintained incrementally: ObserveLabel-adjacent code
  // refreshes only the observed stratum.
  std::vector<double> alias_snapshot_mass_;
  std::vector<double> alias_live_mass_;
  // F-hat the alias masses were last (re)built with; < 0 until InitAlias.
  double alias_f_ = -1.0;
  // Total snapshot mass and accumulated L1 drift |live - snapshot| across
  // strata, maintained in O(1) per step:
  //   drift += |new_live_k - snap_k| - |old_live_k - snap_k|.
  double alias_total_ = 0.0;
  double alias_drift_ = 0.0;
  // True when the last rebuild found all-zero masses (the omega fallback).
  bool alias_degenerate_ = false;
  // --- Sharded-Fenwick-path state ----------------------------------------
  // Blocked v* masses for parallel rebuilds. Empty unless step_path ==
  // kShardedFenwick.
  BlockFenwickForest v_star_forest_;
  // F-hat the forest masses were last (re)built with; < 0 until
  // InitShardedFenwick.
  double forest_f_ = -1.0;
};

}  // namespace oasis

#endif  // OASIS_CORE_OASIS_H_
