#include "core/initialization.h"

#include "sampling/importance.h"
#include "stats/transforms.h"

namespace oasis {

Result<InitialEstimates> InitializeFromScores(const Strata& strata,
                                              const ScoredPool& pool, double alpha) {
  OASIS_RETURN_NOT_OK(pool.Validate());
  if (static_cast<int64_t>(strata.num_items()) != pool.size()) {
    return Status::InvalidArgument("InitializeFromScores: strata/pool size mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("InitializeFromScores: alpha must be in [0, 1]");
  }

  InitialEstimates init;
  const size_t k = strata.num_strata();

  // Lines 2-5: mean score per stratum, mapped to (0, 1) when raw. Clamp away
  // from {0, 1} so the values are usable as beta-prior means.
  init.pi = strata.MeanPerStratum(
      std::span<const double>(pool.scores.data(), pool.scores.size()));
  for (double& p : init.pi) {
    p = ScoreToProbability(p, pool.scores_are_probabilities, pool.threshold);
    p = Clamp(p, 1e-6, 1.0 - 1e-6);
  }

  // Line 6: mean prediction per stratum.
  init.lambda = strata.MeanPerStratum(
      std::span<const uint8_t>(pool.predictions.data(), pool.predictions.size()));

  // Line 8: F-hat(0) from the stratum-level plug-in counts.
  double tp_mass = 0.0;
  double pred_mass = 0.0;
  double true_mass = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double size_k = static_cast<double>(strata.size(i));
    tp_mass += size_k * init.pi[i] * init.lambda[i];
    pred_mass += size_k * init.lambda[i];
    true_mass += size_k * init.pi[i];
  }
  const double denom = alpha * pred_mass + (1.0 - alpha) * true_mass;
  init.f_alpha = denom > 0.0 ? tp_mass / denom : 0.5;
  init.f_alpha = Clamp(init.f_alpha, 0.0, 1.0);
  return init;
}

}  // namespace oasis
