#include "core/oasis.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "core/initialization.h"
#include "core/instrumental.h"
#include "core/mass_kernel.h"
#include "stats/transforms.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {

/// Per-step bookkeeping shared by all four step paths. The step counter is
/// always cheap; the weight histogram is detail-only (an extra bucket search
/// per step would be measurable on the fused path).
inline void RecordOasisStepTelemetry(double weight) {
  if (!OASIS_TELEMETRY_ON) return;
  static telemetry::Counter& steps = telemetry::DefaultRegistry().AddCounter(
      "oasis_sampler_steps_total",
      "Sampler steps taken (one oracle draw each), across all paths.");
  steps.Increment();
  if (OASIS_TELEMETRY_DETAIL_ON) {
    static telemetry::Histogram& weights =
        telemetry::DefaultRegistry().AddHistogram(
            "oasis_sampler_weight",
            "Importance weight of each step (detail mode only).",
            {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0});
    weights.Observe(weight);
  }
}

}  // namespace

OasisSampler::OasisSampler(const ScoredPool* pool, LabelCache* labels,
                           std::shared_ptr<const Strata> strata,
                           const OasisOptions& options, Rng rng,
                           StratifiedBetaModel model, std::vector<double> lambda,
                           double initial_f)
    : Sampler(pool, labels, options.alpha, rng),
      strata_(std::move(strata)),
      options_(options),
      model_(std::move(model)),
      lambda_(std::move(lambda)),
      initial_f_(initial_f),
      estimator_(options.alpha),
      monitor_(options.degeneracy),
      active_epsilon_(options.epsilon) {
  const size_t num_strata = strata_->num_strata();
  v_scratch_.resize(num_strata);
  // Seed the incremental posterior caches and the per-stratum constants of
  // the v* formula. (1 - alpha) * (1 - lambda_k) uses the same factor
  // grouping as OptimalStratifiedInstrumentalInto so the fused scan is
  // bit-identical to the reference path.
  pi_cache_ = model_.PosteriorMeans();
  sqrt_pi_cache_.resize(num_strata);
  c_not_pred_.resize(num_strata);
  for (size_t k = 0; k < num_strata; ++k) {
    sqrt_pi_cache_[k] = std::sqrt(pi_cache_[k]);
    c_not_pred_[k] = (1.0 - options_.alpha) * (1.0 - lambda_[k]);
  }
  alpha_sq_ = options_.alpha * options_.alpha;
}

Result<std::unique_ptr<OasisSampler>> OasisSampler::Create(
    const ScoredPool* pool, LabelCache* labels,
    std::shared_ptr<const Strata> strata, const OasisOptions& options, Rng rng) {
  if (pool == nullptr || labels == nullptr || strata == nullptr) {
    return Status::InvalidArgument("OasisSampler: null pool/labels/strata");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("OasisSampler: alpha must be in [0, 1]");
  }
  if (std::isnan(options.epsilon) || options.epsilon <= 0.0 ||
      options.epsilon > 1.0) {
    return Status::InvalidArgument(
        "OasisSampler: epsilon must lie in (0, 1] (Remark 5: epsilon = 0 "
        "forfeits consistency)");
  }
  if (std::isnan(options.fenwick_rebuild_tol) ||
      std::isinf(options.fenwick_rebuild_tol) ||
      options.fenwick_rebuild_tol < 0.0) {
    return Status::InvalidArgument(
        "OasisSampler: fenwick_rebuild_tol must be finite and >= 0");
  }
  if (options.degrade_on_degeneracy &&
      (std::isnan(options.degraded_epsilon) || options.degraded_epsilon <= 0.0 ||
       options.degraded_epsilon > 1.0)) {
    return Status::InvalidArgument(
        "OasisSampler: degraded_epsilon must lie in (0, 1]");
  }
  if (static_cast<int64_t>(strata->num_items()) != pool->size()) {
    return Status::InvalidArgument("OasisSampler: strata/pool size mismatch");
  }
  OASIS_RETURN_NOT_OK(strata->Validate());

  // Algorithm 2: score-derived initial estimates.
  OASIS_ASSIGN_OR_RETURN(InitialEstimates init,
                         InitializeFromScores(*strata, *pool, options.alpha));

  // Sec. 6.3 default: eta = 2K unless the caller fixed a strength.
  OasisOptions resolved = options;
  if (resolved.prior_strength <= 0.0) {
    resolved.prior_strength = 2.0 * static_cast<double>(strata->num_strata());
  }
  OASIS_ASSIGN_OR_RETURN(
      StratifiedBetaModel model,
      StratifiedBetaModel::Create(init.pi, resolved.prior_strength,
                                  resolved.decay_prior));

  std::unique_ptr<OasisSampler> sampler(
      new OasisSampler(pool, labels, std::move(strata), resolved, rng,
                       std::move(model), std::move(init.lambda), init.f_alpha));
  switch (resolved.step_path) {
    case OasisStepPath::kFenwick:
      OASIS_RETURN_NOT_OK(sampler->InitFenwick());
      break;
    case OasisStepPath::kAlias:
      OASIS_RETURN_NOT_OK(sampler->InitAlias());
      break;
    case OasisStepPath::kShardedFenwick:
      if (resolved.num_shards == 0) {
        return Status::InvalidArgument("OasisSampler: num_shards must be >= 1");
      }
      OASIS_RETURN_NOT_OK(sampler->InitShardedFenwick());
      break;
    case OasisStepPath::kFused:
    case OasisStepPath::kAllocatingReference:
      break;
  }
  return sampler;
}

Result<std::unique_ptr<OasisSampler>> OasisSampler::CreateWithCsf(
    const ScoredPool* pool, LabelCache* labels, size_t target_strata,
    const OasisOptions& options, Rng rng) {
  if (pool == nullptr) {
    return Status::InvalidArgument("OasisSampler: null pool");
  }
  OASIS_ASSIGN_OR_RETURN(
      Strata strata,
      StratifyCsf(pool->scores, target_strata, pool->scores_are_probabilities));
  return Create(pool, labels, std::make_shared<const Strata>(std::move(strata)),
                options, rng);
}

double OasisSampler::FenwickMixtureProbability(size_t k, double total) const {
  const double omega_k = strata_->weight(k);
  return total > 0.0 ? active_epsilon_ * omega_k +
                           (1.0 - active_epsilon_) *
                               (v_star_tree_.value(k) / total)
                     : omega_k;
}

double OasisSampler::StratumMass(size_t k, double f) const {
  const double pi = pi_cache_[k];
  const double not_pred = c_not_pred_[k] * f * sqrt_pi_cache_[k];
  const double pred =
      lambda_[k] * std::sqrt(alpha_sq_ * f * f * (1.0 - pi) +
                             (1.0 - f) * (1.0 - f) * pi);
  return strata_->weight(k) * (not_pred + pred);
}

void OasisSampler::RebuildFenwickMasses(double f) {
  const size_t num_strata = strata_->num_strata();
  const double a2f2 = alpha_sq_ * f * f;
  const double omf2 = (1.0 - f) * (1.0 - f);
  StratumMassKernel(strata_->weights().data(), lambda_.data(), pi_cache_.data(),
                    sqrt_pi_cache_.data(), c_not_pred_.data(), f, a2f2, omf2,
                    v_scratch_.data(), num_strata);
  OASIS_CHECK_OK(v_star_tree_.Rebuild(v_scratch_));
  tree_f_ = f;
}

Status OasisSampler::InitFenwick() {
  OASIS_ASSIGN_OR_RETURN(weights_alias_, AliasTable::Build(strata_->weights()));
  OASIS_ASSIGN_OR_RETURN(v_star_tree_,
                         FenwickTree::Build(strata_->weights()));  // Sized; masses set below.
  RebuildFenwickMasses(Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0));
  return Status::OK();
}

Status OasisSampler::StepFenwick() {
  // Line 3 analogue: keep the maintained masses while F-hat stays within
  // fenwick_rebuild_tol of the value they were built with; otherwise refresh
  // them all at O(K). The per-stratum posterior drift is already folded in by
  // the Update at the end of each step, so between rebuilds the tree is
  // exactly v*(pi(t), tree_f_).
  const double f = Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0);
  const double drift = std::fabs(f - tree_f_);
  if (drift > options_.fenwick_rebuild_tol) {
    if (OASIS_TELEMETRY_ON) {
      static telemetry::Counter& rebuilds =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_sampler_fenwick_rebuilds_total",
              "Full O(K) Fenwick mass rebuilds triggered by F-hat drift.");
      static telemetry::Histogram& drift_hist =
          telemetry::DefaultRegistry().AddHistogram(
              "oasis_sampler_fenwick_rebuild_drift",
              "|F-hat - tree F| observed at each Fenwick rebuild.",
              {1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25});
      rebuilds.Increment();
      drift_hist.Observe(drift);
    }
    RebuildFenwickMasses(f);
  }

  // Lines 4-5: the epsilon-greedy mix is sampled as a literal two-component
  // mixture — with probability epsilon a stratum ~ omega from the O(1) alias
  // table, otherwise ~ v*/total from the O(log K) Fenwick inverse CDF — then
  // an item uniform within the stratum. When every mass degenerates to zero
  // both components collapse to omega (same fallback as the other paths).
  const double total = v_star_tree_.Total();
  size_t k;
  if (total <= 0.0 || rng().NextDouble() < active_epsilon_) {
    k = weights_alias_.Sample(rng());
  } else {
    k = v_star_tree_.FindQuantile(rng().NextDouble() * total);
  }
  const int64_t item = strata_->SampleItem(k, rng());

  // Line 6: w_t = omega_k / v_k with v_k of the distribution the draw above
  // actually used — this is what keeps the estimator consistent for any
  // rebuild tolerance (full support comes from the epsilon component).
  const double weight = strata_->weight(k) / FenwickMixtureProbability(k, total);

  // Lines 7-8: query oracle, read prediction.
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  // Lines 9-11: posterior update and AIS sums. Only stratum k's posterior
  // mean moved, so one O(log K) point update keeps the tree exact under the
  // build-point F.
  ObserveLabel(k, label);
  v_star_tree_.Update(k, StratumMass(k, tree_f_));
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  MaybeDegrade();
  return Status::OK();
}

double OasisSampler::AliasMixtureProbability(size_t k) const {
  const double omega_k = strata_->weight(k);
  return alias_degenerate_
             ? omega_k
             : active_epsilon_ * omega_k +
                   (1.0 - active_epsilon_) * v_alias_.probability(k);
}

void OasisSampler::RebuildAliasMasses(double f) {
  const size_t num_strata = strata_->num_strata();
  const double a2f2 = alpha_sq_ * f * f;
  const double omf2 = (1.0 - f) * (1.0 - f);
  StratumMassKernel(strata_->weights().data(), lambda_.data(), pi_cache_.data(),
                    sqrt_pi_cache_.data(), c_not_pred_.data(), f, a2f2, omf2,
                    alias_snapshot_mass_.data(), num_strata);
  double total = 0.0;
  for (size_t k = 0; k < num_strata; ++k) {
    total += alias_snapshot_mass_[k];
  }
  alias_total_ = total;
  alias_degenerate_ = !(total > 0.0);
  if (!alias_degenerate_) {
    // In-place Vose refresh over the retained buffers — no allocation.
    OASIS_CHECK_OK(v_alias_.Rebuild(alias_snapshot_mass_));
  }
  std::copy(alias_snapshot_mass_.begin(), alias_snapshot_mass_.end(),
            alias_live_mass_.begin());
  alias_drift_ = 0.0;
  alias_f_ = f;
}

Status OasisSampler::InitAlias() {
  OASIS_ASSIGN_OR_RETURN(weights_alias_, AliasTable::Build(strata_->weights()));
  // Build once over the (always valid) stratum weights purely to size the
  // table's internal buffers; RebuildAliasMasses installs the real masses in
  // place immediately after.
  OASIS_ASSIGN_OR_RETURN(v_alias_, AliasTable::Build(strata_->weights()));
  const size_t num_strata = strata_->num_strata();
  alias_snapshot_mass_.resize(num_strata);
  alias_live_mass_.resize(num_strata);
  RebuildAliasMasses(Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0));
  return Status::OK();
}

Status OasisSampler::StepAlias() {
  // Line 3 analogue: the alias table is a frozen snapshot of v*, so two
  // things drift — F-hat away from the build point, and the posterior masses
  // away from the snapshot (the table cannot absorb kFenwick's per-stratum
  // point updates). Rebuild in place (O(K), no allocation) when EITHER drift
  // crosses fenwick_rebuild_tol; in the degenerate all-zero state, rebuild as
  // soon as any mass becomes positive.
  const double f = Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0);
  const double f_drift = std::fabs(f - alias_f_);
  const bool mass_drifted =
      alias_degenerate_
          ? alias_drift_ > 0.0
          : alias_drift_ > options_.fenwick_rebuild_tol * alias_total_;
  if (f_drift > options_.fenwick_rebuild_tol || mass_drifted) {
    if (OASIS_TELEMETRY_ON) {
      static telemetry::Counter& rebuilds =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_sampler_alias_rebuilds_total",
              "Full O(K) alias-table rebuilds triggered by F-hat or "
              "posterior-mass drift.");
      static telemetry::Histogram& drift_hist =
          telemetry::DefaultRegistry().AddHistogram(
              "oasis_sampler_alias_rebuild_drift",
              "|F-hat - alias F| observed at each alias rebuild.",
              {1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25});
      rebuilds.Increment();
      drift_hist.Observe(f_drift);
    }
    RebuildAliasMasses(f);
  }

  // Lines 4-5: the epsilon-greedy mix as a two-component mixture, both
  // components O(1) alias draws — with probability epsilon a stratum ~ omega,
  // otherwise ~ the v* snapshot — then an item uniform within the stratum.
  size_t k;
  if (alias_degenerate_ || rng().NextDouble() < active_epsilon_) {
    k = weights_alias_.Sample(rng());
  } else {
    k = v_alias_.Sample(rng());
  }
  const int64_t item = strata_->SampleItem(k, rng());

  // Line 6: w_t = omega_k / v_k with v_k of the distribution the draw above
  // actually used — consistency holds at any staleness because the epsilon
  // component keeps full support.
  const double weight = strata_->weight(k) / AliasMixtureProbability(k);

  // Lines 7-8: query oracle, read prediction.
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  // Lines 9-11: posterior update and AIS sums, plus O(1) maintenance of the
  // L1 drift between the live masses and the frozen snapshot — only stratum
  // k's posterior mean (and hence its mass under the build-point F) moved.
  ObserveLabel(k, label);
  const double new_live = StratumMass(k, alias_f_);
  alias_drift_ += std::fabs(new_live - alias_snapshot_mass_[k]) -
                  std::fabs(alias_live_mass_[k] - alias_snapshot_mass_[k]);
  if (alias_drift_ < 0.0) alias_drift_ = 0.0;  // FP cancellation guard.
  alias_live_mass_[k] = new_live;
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  MaybeDegrade();
  return Status::OK();
}

double OasisSampler::ShardedMixtureProbability(size_t k, double total) const {
  const double omega_k = strata_->weight(k);
  return total > 0.0 ? active_epsilon_ * omega_k +
                           (1.0 - active_epsilon_) *
                               (v_star_forest_.value(k) / total)
                     : omega_k;
}

void OasisSampler::RebuildShardedMasses(double f) {
  const double a2f2 = alpha_sq_ * f * f;
  const double omf2 = (1.0 - f) * (1.0 - f);
  const double* weights = strata_->weights().data();
  const double* lambda = lambda_.data();
  const double* pi = pi_cache_.data();
  const double* sqrt_pi = sqrt_pi_cache_.data();
  const double* c_not_pred = c_not_pred_.data();
  // The fill is strictly elementwise — out[j] depends on the global index
  // begin + j alone — so ParallelRebuildWith's bit-identity guarantee
  // extends to the mass computation: any shard/thread count produces the
  // same forest, bit for bit.
  OASIS_CHECK_OK(v_star_forest_.ParallelRebuildWith(
      [&](size_t begin, std::span<double> out) {
        StratumMassKernel(weights + begin, lambda + begin, pi + begin,
                          sqrt_pi + begin, c_not_pred + begin, f, a2f2, omf2,
                          out.data(), out.size());
      },
      options_.shard_pool, options_.num_shards));
  forest_f_ = f;
}

Status OasisSampler::InitShardedFenwick() {
  OASIS_ASSIGN_OR_RETURN(weights_alias_, AliasTable::Build(strata_->weights()));
  OASIS_ASSIGN_OR_RETURN(
      v_star_forest_,
      BlockFenwickForest::Build(strata_->weights(),
                                options_.shard_block_size));  // Sized; masses set below.
  RebuildShardedMasses(Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0));
  return Status::OK();
}

Status OasisSampler::StepShardedFenwick() {
  // Identical to StepFenwick except the masses live in the blocked forest:
  // the O(K) drift rebuild shards across options_.shard_pool, draws and the
  // per-step point update stay O(log K).
  const double f = Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0);
  const double drift = std::fabs(f - forest_f_);
  if (drift > options_.fenwick_rebuild_tol) {
    if (OASIS_TELEMETRY_ON) {
      static telemetry::Counter& rebuilds =
          telemetry::DefaultRegistry().AddCounter(
              "oasis_sampler_sharded_rebuilds_total",
              "Full O(K) sharded forest mass rebuilds triggered by F-hat "
              "drift.");
      static telemetry::Histogram& drift_hist =
          telemetry::DefaultRegistry().AddHistogram(
              "oasis_sampler_sharded_rebuild_drift",
              "|F-hat - forest F| observed at each sharded rebuild.",
              {1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25});
      rebuilds.Increment();
      drift_hist.Observe(drift);
    }
    RebuildShardedMasses(f);
  }

  const double total = v_star_forest_.Total();
  size_t k;
  if (total <= 0.0 || rng().NextDouble() < active_epsilon_) {
    k = weights_alias_.Sample(rng());
  } else {
    k = v_star_forest_.FindQuantile(rng().NextDouble() * total);
  }
  const int64_t item = strata_->SampleItem(k, rng());

  const double weight =
      strata_->weight(k) / ShardedMixtureProbability(k, total);

  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  ObserveLabel(k, label);
  v_star_forest_.Update(k, StratumMass(k, forest_f_));
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  MaybeDegrade();
  return Status::OK();
}

void OasisSampler::ObserveLabel(size_t stratum, bool label) {
  model_.Observe(stratum, label);
  // Only the observed stratum's posterior changed (Eqn. 10 is per-stratum),
  // so a single refresh keeps the caches exact.
  pi_cache_[stratum] = model_.PosteriorMean(stratum);
  sqrt_pi_cache_[stratum] = std::sqrt(pi_cache_[stratum]);
}

Status OasisSampler::StepFused() {
  const size_t num_strata = strata_->num_strata();
  const double* OASIS_RESTRICT weights = strata_->weights().data();
  const double* OASIS_RESTRICT lambda = lambda_.data();
  const double* OASIS_RESTRICT pi = pi_cache_.data();
  const double* OASIS_RESTRICT sqrt_pi = sqrt_pi_cache_.data();
  const double* OASIS_RESTRICT c_not_pred = c_not_pred_.data();
  double* OASIS_RESTRICT v = v_scratch_.data();

  // Line 3: v(t) from the current posterior means and F estimate. One fused
  // scan computes the unnormalised v* masses; normalisation and the
  // epsilon-greedy mix fold into a second in-place scan. Every expression
  // keeps the reference path's factor grouping, so a seeded run is
  // bit-identical to OasisStepPath::kAllocatingReference.
  const double f = Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0);
  const double a2f2 = alpha_sq_ * f * f;          // alpha^2 F^2
  const double omf2 = (1.0 - f) * (1.0 - f);      // (1 - F)^2
  // The mass kernel is strictly elementwise (vectorised lanes round exactly
  // like the scalar expression, no FMA contraction), so splitting the scan
  // from the in-order total reduction below preserves bit-identity with the
  // reference path.
  StratumMassKernel(weights, lambda, pi, sqrt_pi, c_not_pred, f, a2f2, omf2, v,
                    num_strata);
  double total = 0.0;
  for (size_t i = 0; i < num_strata; ++i) {
    total += v[i];
  }
  const double epsilon = active_epsilon_;
  if (total <= 0.0) {
    // Degenerate estimates: fall back to the (already normalised by
    // invariant, renormalised here for exact reference parity) stratum
    // weights before mixing.
    std::copy(strata_->weights().begin(), strata_->weights().end(),
              v_scratch_.begin());
    NormalizeInPlace(v_scratch_);
    for (size_t i = 0; i < num_strata; ++i) {
      v[i] = epsilon * weights[i] + (1.0 - epsilon) * v[i];
    }
  } else {
    for (size_t i = 0; i < num_strata; ++i) {
      v[i] /= total;
      v[i] = epsilon * weights[i] + (1.0 - epsilon) * v[i];
    }
  }

  // Lines 4-5: stratum ~ v(t), item uniform within the stratum.
  const size_t k = rng().NextDiscreteLinear(v_scratch_);
  const int64_t item = strata_->SampleItem(k, rng());

  // Line 6: importance weight w_t = omega_k / v_k, since p(z) = 1/N and
  // q_t(z) = v_k / |P_k|. The epsilon floor bounds this by 1/epsilon.
  const double weight = strata_->weight(k) / v_scratch_[k];

  // Lines 7-8: query oracle, read prediction.
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  // Lines 9-11: posterior update and AIS sums.
  ObserveLabel(k, label);
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  MaybeDegrade();
  return Status::OK();
}

Status OasisSampler::StepAllocatingReference() {
  const size_t num_strata = strata_->num_strata();

  // Line 3: v(t) from the current posterior means and F estimate, with the
  // initial Algorithm-2 guess standing in until Eqn. (3) is defined.
  const double f_current = estimator_.FAlphaOr(initial_f_);
  v_scratch_.resize(num_strata);
  {
    std::vector<double> pi = model_.PosteriorMeans();
    OASIS_ASSIGN_OR_RETURN(
        std::vector<double> v_star,
        OptimalStratifiedInstrumental(strata_->weights(), lambda_, pi, f_current,
                                      options_.alpha));
    OASIS_ASSIGN_OR_RETURN(
        v_scratch_, EpsilonGreedyMix(strata_->weights(), v_star, active_epsilon_));
  }

  // Lines 4-5: stratum ~ v(t), item uniform within the stratum.
  const size_t k = rng().NextDiscreteLinear(v_scratch_);
  const int64_t item = strata_->SampleItem(k, rng());

  // Line 6: importance weight w_t = omega_k / v_k, since p(z) = 1/N and
  // q_t(z) = v_k / |P_k|. The epsilon floor bounds this by 1/epsilon.
  const double weight = strata_->weight(k) / v_scratch_[k];

  // Lines 7-8: query oracle, read prediction.
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  // Lines 9-11: posterior update and AIS sums.
  ObserveLabel(k, label);
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  MaybeDegrade();
  return Status::OK();
}

void OasisSampler::MaybeDegrade() {
  if (!options_.degrade_on_degeneracy || degraded_ || !monitor_.degenerate()) {
    return;
  }
  // Graceful degradation: the weight history says the adaptive instrumental
  // has collapsed onto a vanishing subset of draws. Boost the exploration
  // floor — bounding every future weight by 1/active_epsilon_ — and
  // optionally stop chasing the (evidently misleading) posterior. Estimates
  // remain consistent: from here on the sampler still draws from a fixed,
  // fully-supported distribution and weights against THAT distribution, so
  // the AIS estimator keeps averaging unbiased per-draw ratios (see
  // docs/FAULT_MODEL.md for the argument and its Delyon–Portier framing).
  degraded_ = true;
  if (OASIS_TELEMETRY_ON) {
    static telemetry::Counter& entries = telemetry::DefaultRegistry().AddCounter(
        "oasis_sampler_degraded_entries_total",
        "Times a sampler entered degraded (boosted-epsilon) mode.");
    entries.Increment();
  }
  active_epsilon_ = std::max(options_.epsilon, options_.degraded_epsilon);
  if (options_.freeze_instrumental_on_degrade) {
    CaptureFrozenInstrumental();
    frozen_ = true;
  }
}

void OasisSampler::CaptureFrozenInstrumental() {
  const size_t num_strata = strata_->num_strata();
  const double f = Clamp(estimator_.FAlphaOr(initial_f_), 0.0, 1.0);
  frozen_v_.resize(num_strata);
  double total = 0.0;
  for (size_t k = 0; k < num_strata; ++k) {
    frozen_v_[k] = StratumMass(k, f);
    total += frozen_v_[k];
  }
  if (total <= 0.0) {
    std::copy(strata_->weights().begin(), strata_->weights().end(),
              frozen_v_.begin());
    NormalizeInPlace(frozen_v_);
  } else {
    for (size_t k = 0; k < num_strata; ++k) frozen_v_[k] /= total;
  }
  for (size_t k = 0; k < num_strata; ++k) {
    frozen_v_[k] = active_epsilon_ * strata_->weight(k) +
                   (1.0 - active_epsilon_) * frozen_v_[k];
  }
}

Status OasisSampler::StepFrozen() {
  // Degraded mode: a fixed, fully-supported instrumental. The posterior and
  // the monitor keep updating (diagnostics and a possible recovery analysis),
  // but the sampling distribution no longer adapts.
  const size_t k = rng().NextDiscreteLinear(frozen_v_);
  const int64_t item = strata_->SampleItem(k, rng());
  const double weight = strata_->weight(k) / frozen_v_[k];
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;
  ObserveLabel(k, label);
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  monitor_.Observe(weight);
  RecordOasisStepTelemetry(weight);
  return Status::OK();
}

Status OasisSampler::Step() {
  if (frozen_) return StepFrozen();
  switch (options_.step_path) {
    case OasisStepPath::kAllocatingReference:
      return StepAllocatingReference();
    case OasisStepPath::kFenwick:
      return StepFenwick();
    case OasisStepPath::kAlias:
      return StepAlias();
    case OasisStepPath::kShardedFenwick:
      return StepShardedFenwick();
    case OasisStepPath::kFused:
      break;
  }
  return StepFused();
}

Status OasisSampler::StepBatch(int64_t n) {
  if (n < 0) {
    return Status::InvalidArgument("StepBatch: n must be non-negative");
  }
  // OASIS is sequentially adaptive: the instrumental distribution for step
  // t + 1 depends on the oracle label observed at step t, so — unlike the
  // static samplers — a batch cannot pre-draw its items and amortise oracle
  // round-trips through LabelCache::QueryBatch without changing the
  // algorithm. The batch win here is hoisting the path dispatch out of the
  // loop; label-level batching for the static samplers lives in their own
  // StepBatch overrides.
  if (options_.degrade_on_degeneracy) {
    // The degradation hook can flip the step path mid-batch; take the
    // dispatching loop so the transition lands on the exact step the monitor
    // fired (identical to n sequential Step() calls by construction).
    for (int64_t i = 0; i < n; ++i) {
      OASIS_RETURN_NOT_OK(Step());
    }
    return Status::OK();
  }
  switch (options_.step_path) {
    case OasisStepPath::kAllocatingReference:
      for (int64_t i = 0; i < n; ++i) {
        OASIS_RETURN_NOT_OK(StepAllocatingReference());
      }
      return Status::OK();
    case OasisStepPath::kFenwick:
      for (int64_t i = 0; i < n; ++i) {
        OASIS_RETURN_NOT_OK(StepFenwick());
      }
      return Status::OK();
    case OasisStepPath::kAlias:
      for (int64_t i = 0; i < n; ++i) {
        OASIS_RETURN_NOT_OK(StepAlias());
      }
      return Status::OK();
    case OasisStepPath::kShardedFenwick:
      for (int64_t i = 0; i < n; ++i) {
        OASIS_RETURN_NOT_OK(StepShardedFenwick());
      }
      return Status::OK();
    case OasisStepPath::kFused:
      break;
  }
  for (int64_t i = 0; i < n; ++i) {
    OASIS_RETURN_NOT_OK(StepFused());
  }
  return Status::OK();
}

EstimateSnapshot OasisSampler::Estimate() const { return estimator_.Snapshot(); }

std::string OasisSampler::name() const {
  return "OASIS-" + std::to_string(strata_->num_strata());
}

Result<std::vector<double>> OasisSampler::FenwickInstrumental() const {
  if (options_.step_path != OasisStepPath::kFenwick) {
    return Status::FailedPrecondition(
        "FenwickInstrumental: sampler does not run the kFenwick step path");
  }
  const size_t num_strata = strata_->num_strata();
  const double total = v_star_tree_.Total();
  std::vector<double> v(num_strata);
  for (size_t k = 0; k < num_strata; ++k) {
    v[k] = FenwickMixtureProbability(k, total);
  }
  return v;
}

Result<std::vector<double>> OasisSampler::AliasInstrumental() const {
  if (options_.step_path != OasisStepPath::kAlias) {
    return Status::FailedPrecondition(
        "AliasInstrumental: sampler does not run the kAlias step path");
  }
  const size_t num_strata = strata_->num_strata();
  std::vector<double> v(num_strata);
  for (size_t k = 0; k < num_strata; ++k) {
    v[k] = AliasMixtureProbability(k);
  }
  return v;
}

Result<std::vector<double>> OasisSampler::CurrentInstrumental() const {
  const double f_current = estimator_.FAlphaOr(initial_f_);
  std::vector<double> pi = model_.PosteriorMeans();
  OASIS_ASSIGN_OR_RETURN(
      std::vector<double> v_star,
      OptimalStratifiedInstrumental(strata_->weights(), lambda_, pi, f_current,
                                    options_.alpha));
  return EpsilonGreedyMix(strata_->weights(), v_star, active_epsilon_);
}

}  // namespace oasis
