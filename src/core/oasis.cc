#include "core/oasis.h"

#include <cmath>
#include <utility>

#include "core/initialization.h"
#include "core/instrumental.h"

namespace oasis {

OasisSampler::OasisSampler(const ScoredPool* pool, LabelCache* labels,
                           std::shared_ptr<const Strata> strata,
                           const OasisOptions& options, Rng rng,
                           StratifiedBetaModel model, std::vector<double> lambda,
                           double initial_f)
    : Sampler(pool, labels, options.alpha, rng),
      strata_(std::move(strata)),
      options_(options),
      model_(std::move(model)),
      lambda_(std::move(lambda)),
      initial_f_(initial_f),
      estimator_(options.alpha) {}

Result<std::unique_ptr<OasisSampler>> OasisSampler::Create(
    const ScoredPool* pool, LabelCache* labels,
    std::shared_ptr<const Strata> strata, const OasisOptions& options, Rng rng) {
  if (pool == nullptr || labels == nullptr || strata == nullptr) {
    return Status::InvalidArgument("OasisSampler: null pool/labels/strata");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("OasisSampler: alpha must be in [0, 1]");
  }
  if (std::isnan(options.epsilon) || options.epsilon <= 0.0 ||
      options.epsilon > 1.0) {
    return Status::InvalidArgument(
        "OasisSampler: epsilon must lie in (0, 1] (Remark 5: epsilon = 0 "
        "forfeits consistency)");
  }
  if (static_cast<int64_t>(strata->num_items()) != pool->size()) {
    return Status::InvalidArgument("OasisSampler: strata/pool size mismatch");
  }
  OASIS_RETURN_NOT_OK(strata->Validate());

  // Algorithm 2: score-derived initial estimates.
  OASIS_ASSIGN_OR_RETURN(InitialEstimates init,
                         InitializeFromScores(*strata, *pool, options.alpha));

  // Sec. 6.3 default: eta = 2K unless the caller fixed a strength.
  OasisOptions resolved = options;
  if (resolved.prior_strength <= 0.0) {
    resolved.prior_strength = 2.0 * static_cast<double>(strata->num_strata());
  }
  OASIS_ASSIGN_OR_RETURN(
      StratifiedBetaModel model,
      StratifiedBetaModel::Create(init.pi, resolved.prior_strength,
                                  resolved.decay_prior));

  return std::unique_ptr<OasisSampler>(
      new OasisSampler(pool, labels, std::move(strata), resolved, rng,
                       std::move(model), std::move(init.lambda), init.f_alpha));
}

Result<std::unique_ptr<OasisSampler>> OasisSampler::CreateWithCsf(
    const ScoredPool* pool, LabelCache* labels, size_t target_strata,
    const OasisOptions& options, Rng rng) {
  if (pool == nullptr) {
    return Status::InvalidArgument("OasisSampler: null pool");
  }
  OASIS_ASSIGN_OR_RETURN(
      Strata strata,
      StratifyCsf(pool->scores, target_strata, pool->scores_are_probabilities));
  return Create(pool, labels, std::make_shared<const Strata>(std::move(strata)),
                options, rng);
}

Status OasisSampler::Step() {
  const size_t num_strata = strata_->num_strata();

  // Line 3: v(t) from the current posterior means and F estimate, with the
  // initial Algorithm-2 guess standing in until Eqn. (3) is defined.
  const double f_current = estimator_.FAlphaOr(initial_f_);
  v_scratch_.resize(num_strata);
  {
    std::vector<double> pi = model_.PosteriorMeans();
    OASIS_ASSIGN_OR_RETURN(
        std::vector<double> v_star,
        OptimalStratifiedInstrumental(strata_->weights(), lambda_, pi, f_current,
                                      options_.alpha));
    OASIS_ASSIGN_OR_RETURN(
        v_scratch_, EpsilonGreedyMix(strata_->weights(), v_star, options_.epsilon));
  }

  // Lines 4-5: stratum ~ v(t), item uniform within the stratum.
  const size_t k = rng().NextDiscreteLinear(v_scratch_);
  const int64_t item = strata_->SampleItem(k, rng());

  // Line 6: importance weight w_t = omega_k / v_k, since p(z) = 1/N and
  // q_t(z) = v_k / |P_k|. The epsilon floor bounds this by 1/epsilon.
  const double weight = strata_->weight(k) / v_scratch_[k];

  // Lines 7-8: query oracle, read prediction.
  const bool label = QueryLabel(item);
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;

  // Lines 9-11: posterior update and AIS sums.
  model_.Observe(k, label);
  estimator_.Add(weight, label, prediction);
  if (observer_) observer_(weight, label, prediction);
  return Status::OK();
}

EstimateSnapshot OasisSampler::Estimate() const { return estimator_.Snapshot(); }

std::string OasisSampler::name() const {
  return "OASIS-" + std::to_string(strata_->num_strata());
}

Result<std::vector<double>> OasisSampler::CurrentInstrumental() const {
  const double f_current = estimator_.FAlphaOr(initial_f_);
  std::vector<double> pi = model_.PosteriorMeans();
  OASIS_ASSIGN_OR_RETURN(
      std::vector<double> v_star,
      OptimalStratifiedInstrumental(strata_->weights(), lambda_, pi, f_current,
                                    options_.alpha));
  return EpsilonGreedyMix(strata_->weights(), v_star, options_.epsilon);
}

}  // namespace oasis
