#ifndef OASIS_CORE_BAYESIAN_MODEL_H_
#define OASIS_CORE_BAYESIAN_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace oasis {

/// Stratified beta-Bernoulli latent-variable model of the oracle
/// (paper Sec. 4.2.2).
///
/// Each stratum k carries an independent Beta(gamma0_k, gamma1_k) prior over
/// its match probability pi_k; observed labels update the posterior by count
/// increments (Eqn. 10) and point estimates are posterior means (Eqn. 11).
///
/// The prior is parametrised as Gamma(0) = eta * [pi0; 1 - pi0] (Sec. 4.3).
/// With `decay_prior` (the paper's Remark 4) the prior pseudo-counts are
/// retroactively down-weighted by 1/n_k once labels arrive, which speeds
/// convergence and adds robustness to a misspecified pi0. Prior and observed
/// counts are stored separately so the decay is exact.
class StratifiedBetaModel {
 public:
  /// `prior_pi` holds the initial per-stratum match-probability guesses,
  /// each in (0, 1); `prior_strength` is eta > 0.
  static Result<StratifiedBetaModel> Create(std::span<const double> prior_pi,
                                            double prior_strength, bool decay_prior);

  /// Records one oracle label for stratum k (Eqn. 10).
  void Observe(size_t stratum, bool label);

  /// Posterior mean estimate of pi_k (Eqn. 11, with Remark-4 decay applied
  /// when enabled).
  double PosteriorMean(size_t stratum) const;

  /// All posterior means; recomputed on demand.
  std::vector<double> PosteriorMeans() const;

  /// In-place variant of PosteriorMeans: writes the K posterior means into
  /// `out` (which must have length num_strata()) without allocating, for
  /// callers that reuse a scratch buffer across iterations. (OasisSampler's
  /// fused step goes further and maintains its own incremental cache, so it
  /// does not call this per step.)
  Status PosteriorMeansInto(std::span<double> out) const;

  /// Number of strata K the model covers.
  size_t num_strata() const { return prior_match_.size(); }
  /// Labels observed in `stratum` so far (equivalently: how often the OASIS
  /// sampler visited it, since each step observes exactly one label).
  int64_t labels_observed(size_t stratum) const { return observed_total_[stratum]; }
  /// Positive labels observed in `stratum` so far.
  int64_t matches_observed(size_t stratum) const { return observed_match_[stratum]; }
  /// Whether Remark-4 retroactive prior decay is active.
  bool decay_prior() const { return decay_prior_; }

 private:
  StratifiedBetaModel(std::vector<double> prior_match,
                      std::vector<double> prior_nonmatch, bool decay_prior);

  // Prior pseudo-counts gamma(0): match row (eta * pi0) and non-match row
  // (eta * (1 - pi0)).
  std::vector<double> prior_match_;
  std::vector<double> prior_nonmatch_;
  // Observed label counts per stratum.
  std::vector<int64_t> observed_match_;
  std::vector<int64_t> observed_total_;
  bool decay_prior_;
};

}  // namespace oasis

#endif  // OASIS_CORE_BAYESIAN_MODEL_H_
