#include "core/mass_kernel.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace oasis {

namespace {

/// The scalar formula, shared by the vector tails and the fallback. Factor
/// grouping mirrors OptimalStratifiedInstrumentalInto / StratumMass exactly:
/// not_pred associates as (c * f) * sqrt_pi, the radicand as
/// (a2f2 * (1 - pi)) + (omf2 * pi).
inline double ScalarMass(double weight, double lambda, double pi,
                         double sqrt_pi, double c_not_pred, double f,
                         double a2f2, double omf2) {
  const double not_pred = c_not_pred * f * sqrt_pi;
  const double pred = lambda * std::sqrt(a2f2 * (1.0 - pi) + omf2 * pi);
  return weight * (not_pred + pred);
}

}  // namespace

void StratumMassKernel(const double* weights, const double* lambda,
                       const double* pi, const double* sqrt_pi,
                       const double* c_not_pred, double f, double a2f2,
                       double omf2, double* v, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  const __m256d vf = _mm256_set1_pd(f);
  const __m256d va2f2 = _mm256_set1_pd(a2f2);
  const __m256d vomf2 = _mm256_set1_pd(omf2);
  const __m256d vone = _mm256_set1_pd(1.0);
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_loadu_pd(pi + i);
    const __m256d not_pred = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_loadu_pd(c_not_pred + i), vf),
        _mm256_loadu_pd(sqrt_pi + i));
    // No _mm256_fmadd_pd here: the scalar formula rounds the two products
    // separately before the add, and bit-identity is the contract.
    const __m256d radicand =
        _mm256_add_pd(_mm256_mul_pd(va2f2, _mm256_sub_pd(vone, p)),
                      _mm256_mul_pd(vomf2, p));
    const __m256d pred = _mm256_mul_pd(_mm256_loadu_pd(lambda + i),
                                       _mm256_sqrt_pd(radicand));
    _mm256_storeu_pd(v + i,
                     _mm256_mul_pd(_mm256_loadu_pd(weights + i),
                                   _mm256_add_pd(not_pred, pred)));
  }
#elif defined(__SSE2__)
  const __m128d vf = _mm_set1_pd(f);
  const __m128d va2f2 = _mm_set1_pd(a2f2);
  const __m128d vomf2 = _mm_set1_pd(omf2);
  const __m128d vone = _mm_set1_pd(1.0);
  for (; i + 2 <= n; i += 2) {
    const __m128d p = _mm_loadu_pd(pi + i);
    const __m128d not_pred =
        _mm_mul_pd(_mm_mul_pd(_mm_loadu_pd(c_not_pred + i), vf),
                   _mm_loadu_pd(sqrt_pi + i));
    const __m128d radicand = _mm_add_pd(
        _mm_mul_pd(va2f2, _mm_sub_pd(vone, p)), _mm_mul_pd(vomf2, p));
    const __m128d pred =
        _mm_mul_pd(_mm_loadu_pd(lambda + i), _mm_sqrt_pd(radicand));
    _mm_storeu_pd(v + i, _mm_mul_pd(_mm_loadu_pd(weights + i),
                                    _mm_add_pd(not_pred, pred)));
  }
#endif
  for (; i < n; ++i) {
    v[i] = ScalarMass(weights[i], lambda[i], pi[i], sqrt_pi[i], c_not_pred[i],
                      f, a2f2, omf2);
  }
}

bool MassKernelVectorized() {
#if defined(__AVX2__) || defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

}  // namespace oasis
