#ifndef OASIS_CORE_MULTI_ALPHA_H_
#define OASIS_CORE_MULTI_ALPHA_H_

#include <vector>

#include "common/status.h"
#include "core/ais_estimator.h"

namespace oasis {

/// Joint F-measure estimation over a grid of alpha weights from one label
/// stream.
///
/// Eqn. (3)'s three weighted sums (num, den_pred, den_true) do not depend on
/// alpha, so a single sampler run prices the entire precision-recall
/// trade-off curve F_alpha for alpha in [0, 1] simultaneously — the
/// "precision-recall curve" use case of Welinder et al. that the paper's
/// related work discusses, here with consistent AIS estimates.
///
/// Note the sampling distribution itself is optimised for one alpha (the one
/// the driving OasisSampler was configured with); estimates at other alphas
/// remain consistent but carry higher variance the further they sit from the
/// optimised weight.
class MultiAlphaEstimator {
 public:
  /// Builds with the alpha evaluation grid (each in [0, 1], non-empty).
  static Result<MultiAlphaEstimator> Create(std::vector<double> alphas);

  /// Folds one importance-weighted observation into the shared sums.
  void Add(double weight, bool label, bool prediction);

  /// F_alpha estimate for grid entry i; undefined (false) until the
  /// corresponding denominator is positive.
  struct GridEstimate {
    double alpha = 0.0;
    double f_alpha = 0.0;
    bool defined = false;
  };
  std::vector<GridEstimate> Estimates() const;

  /// The alpha evaluation grid, as passed to Create.
  const std::vector<double>& alphas() const { return alphas_; }
  /// Number of observations folded in so far.
  int64_t observations() const { return observations_; }

 private:
  explicit MultiAlphaEstimator(std::vector<double> alphas);

  std::vector<double> alphas_;
  double num_ = 0.0;
  double den_pred_ = 0.0;
  double den_true_ = 0.0;
  int64_t observations_ = 0;
};

}  // namespace oasis

#endif  // OASIS_CORE_MULTI_ALPHA_H_
