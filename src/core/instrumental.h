#ifndef OASIS_CORE_INSTRUMENTAL_H_
#define OASIS_CORE_INSTRUMENTAL_H_

#include <span>
#include <vector>

#include "common/status.h"

namespace oasis {

/// Computes the stratified asymptotically optimal instrumental distribution
/// v* of the paper (the stratified adaptation of Eqn. 5):
///
///   v*_k ∝ omega_k [ (1-alpha)(1-lambda_k) F sqrt(pi_k)
///                    + lambda_k sqrt(alpha^2 F^2 (1-pi_k) + (1-F)^2 pi_k) ]
///
/// where omega_k is the stratum weight, lambda_k the stratum mean prediction,
/// pi_k the (estimated or true) stratum match probability and F the
/// (estimated or true) F-measure. The result is normalised to sum to one;
/// when every unnormalised mass is zero (e.g. F = 0 and pi = 0 everywhere)
/// the stratum weights omega are returned instead, which keeps the sampler
/// well defined.
///
/// All spans must have the same length; pi entries must lie in [0, 1].
Result<std::vector<double>> OptimalStratifiedInstrumental(
    std::span<const double> weights, std::span<const double> lambda,
    std::span<const double> pi, double f_measure, double alpha);

/// In-place variant of OptimalStratifiedInstrumental: writes the normalised
/// distribution into `out` (same length as the inputs) without allocating.
/// `out` may not alias the inputs. Produces bit-identical values to the
/// allocating overload; the OASIS hot path and tests rely on this.
Status OptimalStratifiedInstrumentalInto(std::span<const double> weights,
                                         std::span<const double> lambda,
                                         std::span<const double> pi,
                                         double f_measure, double alpha,
                                         std::span<double> out);

/// Mixes v* with the stratum weights per the epsilon-greedy rule (Eqn. 12):
/// v_k = epsilon * omega_k + (1 - epsilon) * v*_k. With epsilon > 0 every
/// stratum keeps positive mass, the property that powers the consistency
/// proof (Theorem 3 / Remark 5) and bounds importance weights by 1/epsilon.
Result<std::vector<double>> EpsilonGreedyMix(std::span<const double> weights,
                                             std::span<const double> v_star,
                                             double epsilon);

/// In-place variant of EpsilonGreedyMix. `out` must have the common input
/// length and may alias `v_star` (each element is read before it is
/// written), which lets the hot path mix in place over one scratch buffer.
Status EpsilonGreedyMixInto(std::span<const double> weights,
                            std::span<const double> v_star, double epsilon,
                            std::span<double> out);

}  // namespace oasis

#endif  // OASIS_CORE_INSTRUMENTAL_H_
