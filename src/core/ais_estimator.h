#ifndef OASIS_CORE_AIS_ESTIMATOR_H_
#define OASIS_CORE_AIS_ESTIMATOR_H_

#include <cstdint>

#include "sampling/sampler.h"

namespace oasis {

/// Running form of the adaptive-importance-sampling F-measure estimator
/// (paper Eqn. 3).
///
/// Maintains the three weighted sums
///   num      = sum_t w_t l_t l-hat_t
///   den_pred = sum_t w_t l-hat_t
///   den_true = sum_t w_t l_t
/// from which F_alpha = num / (alpha den_pred + (1-alpha) den_true),
/// precision = num / den_pred, and recall = num / den_true all follow — the
/// alpha=1 and alpha=0 specialisations of the same statistic.
class AisEstimator {
 public:
  /// `alpha` is the F-measure weight the F_alpha snapshot reports (the sums
  /// themselves are alpha-free; see MultiAlphaEstimator for pricing a grid).
  explicit AisEstimator(double alpha);

  /// Folds one weighted observation (w_t, l_t, l-hat_t) into the sums.
  void Add(double weight, bool label, bool prediction);

  /// Current snapshot; fields are undefined until the corresponding
  /// denominator is positive (the 0/0 regime of Eqn. 3).
  EstimateSnapshot Snapshot() const;

  /// F_alpha if defined, otherwise `fallback` — OASIS feeds this into the
  /// instrumental-distribution update with fallback = F-hat(0).
  double FAlphaOr(double fallback) const;

  /// Number of observations folded in so far.
  int64_t observations() const { return observations_; }
  /// Raw weighted sum num = sum_t w_t l_t l-hat_t.
  double numerator() const { return num_; }
  /// Raw weighted sum den_pred = sum_t w_t l-hat_t.
  double denominator_predicted() const { return den_pred_; }
  /// Raw weighted sum den_true = sum_t w_t l_t.
  double denominator_true() const { return den_true_; }

 private:
  double alpha_;
  double num_ = 0.0;
  double den_pred_ = 0.0;
  double den_true_ = 0.0;
  int64_t observations_ = 0;
};

}  // namespace oasis

#endif  // OASIS_CORE_AIS_ESTIMATOR_H_
