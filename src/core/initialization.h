#ifndef OASIS_CORE_INITIALIZATION_H_
#define OASIS_CORE_INITIALIZATION_H_

#include <vector>

#include "common/status.h"
#include "sampling/sampler.h"
#include "strata/strata.h"

namespace oasis {

/// Output of Algorithm 2: the score-derived initial guesses OASIS starts
/// from before any label has been collected.
struct InitialEstimates {
  /// Initial F-measure guess F-hat(0).
  double f_alpha = 0.0;
  /// Initial per-stratum oracle probability guesses pi-hat(0), clamped to
  /// (0, 1) so they are valid beta-prior means.
  std::vector<double> pi;
  /// Per-stratum mean predictions lambda_k (known exactly from the pool).
  std::vector<double> lambda;
};

/// Implements Algorithm 2 of the paper. pi-hat(0)_k is the stratum mean
/// score, passed through the logistic map around pool.threshold when scores
/// are not probabilities; F-hat(0) combines pi-hat(0), lambda and the stratum
/// sizes exactly as in line 8.
Result<InitialEstimates> InitializeFromScores(const Strata& strata,
                                              const ScoredPool& pool, double alpha);

}  // namespace oasis

#endif  // OASIS_CORE_INITIALIZATION_H_
