#include "core/multi_alpha.h"

#include <cmath>
#include <utility>

namespace oasis {

MultiAlphaEstimator::MultiAlphaEstimator(std::vector<double> alphas)
    : alphas_(std::move(alphas)) {}

Result<MultiAlphaEstimator> MultiAlphaEstimator::Create(std::vector<double> alphas) {
  if (alphas.empty()) {
    return Status::InvalidArgument("MultiAlphaEstimator: empty alpha grid");
  }
  for (double alpha : alphas) {
    if (std::isnan(alpha) || alpha < 0.0 || alpha > 1.0) {
      return Status::InvalidArgument("MultiAlphaEstimator: alpha outside [0, 1]");
    }
  }
  return MultiAlphaEstimator(std::move(alphas));
}

void MultiAlphaEstimator::Add(double weight, bool label, bool prediction) {
  if (label && prediction) num_ += weight;
  if (prediction) den_pred_ += weight;
  if (label) den_true_ += weight;
  ++observations_;
}

std::vector<MultiAlphaEstimator::GridEstimate> MultiAlphaEstimator::Estimates()
    const {
  std::vector<GridEstimate> out;
  out.reserve(alphas_.size());
  for (double alpha : alphas_) {
    GridEstimate estimate;
    estimate.alpha = alpha;
    const double denom = alpha * den_pred_ + (1.0 - alpha) * den_true_;
    if (denom > 0.0) {
      estimate.f_alpha = num_ / denom;
      estimate.defined = true;
    }
    out.push_back(estimate);
  }
  return out;
}

}  // namespace oasis
