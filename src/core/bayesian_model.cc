#include "core/bayesian_model.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace oasis {

StratifiedBetaModel::StratifiedBetaModel(std::vector<double> prior_match,
                                         std::vector<double> prior_nonmatch,
                                         bool decay_prior)
    : prior_match_(std::move(prior_match)),
      prior_nonmatch_(std::move(prior_nonmatch)),
      decay_prior_(decay_prior) {
  observed_match_.assign(prior_match_.size(), 0);
  observed_total_.assign(prior_match_.size(), 0);
}

Result<StratifiedBetaModel> StratifiedBetaModel::Create(
    std::span<const double> prior_pi, double prior_strength, bool decay_prior) {
  if (prior_pi.empty()) {
    return Status::InvalidArgument("StratifiedBetaModel: no strata");
  }
  if (!(prior_strength > 0.0) || std::isnan(prior_strength)) {
    return Status::InvalidArgument("StratifiedBetaModel: prior_strength must be > 0");
  }
  std::vector<double> match(prior_pi.size());
  std::vector<double> nonmatch(prior_pi.size());
  for (size_t k = 0; k < prior_pi.size(); ++k) {
    const double pi = prior_pi[k];
    if (std::isnan(pi) || pi <= 0.0 || pi >= 1.0) {
      return Status::InvalidArgument(
          "StratifiedBetaModel: prior probabilities must lie strictly in (0, 1)");
    }
    match[k] = prior_strength * pi;
    nonmatch[k] = prior_strength * (1.0 - pi);
  }
  return StratifiedBetaModel(std::move(match), std::move(nonmatch), decay_prior);
}

void StratifiedBetaModel::Observe(size_t stratum, bool label) {
  OASIS_DCHECK(stratum < num_strata());
  if (label) ++observed_match_[stratum];
  ++observed_total_[stratum];
}

double StratifiedBetaModel::PosteriorMean(size_t stratum) const {
  OASIS_DCHECK(stratum < num_strata());
  const double n = static_cast<double>(observed_total_[stratum]);
  const double m = static_cast<double>(observed_match_[stratum]);
  // Remark 4: retroactively divide the prior column by n_k (>= 1) so its
  // influence fades as real labels accumulate.
  const double decay = decay_prior_ ? std::max(1.0, n) : 1.0;
  const double gamma0 = prior_match_[stratum] / decay;
  const double gamma1 = prior_nonmatch_[stratum] / decay;
  return (gamma0 + m) / (gamma0 + gamma1 + n);
}

std::vector<double> StratifiedBetaModel::PosteriorMeans() const {
  std::vector<double> means(num_strata());
  for (size_t k = 0; k < num_strata(); ++k) means[k] = PosteriorMean(k);
  return means;
}

Status StratifiedBetaModel::PosteriorMeansInto(std::span<double> out) const {
  if (out.size() != num_strata()) {
    return Status::InvalidArgument("PosteriorMeansInto: output length mismatch");
  }
  for (size_t k = 0; k < num_strata(); ++k) out[k] = PosteriorMean(k);
  return Status::OK();
}

}  // namespace oasis
